"""The machine emulator: executes repro-ISA binaries.

This module plays two roles from the paper's architecture (Figure 4):

* the **binary tracer** (S2E's role) — with a :class:`~repro.emu.tracer.
  Tracer` attached it records every control transfer and executed address
  for a set of user-provided inputs; and
* the **measurement host** — it accumulates cycle costs under the shared
  :class:`~repro.emu.costs.CostModel`, producing the runtime numbers that
  Table 1 and Figure 6 normalize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from ..binary.image import STACK_SIZE, STACK_TOP, BinaryImage
from ..errors import EmulationError
from ..isa.disassembler import Disassembler
from ..isa.instructions import Imm, ImportRef, Instruction, Mem
from ..isa.registers import ESP, Reg
from ..obs import recorder as _obs_recorder
from .blocks import EXIT_SENTINEL, BlockCache, shared_block_cache
from .cpu import CPU, MASK32, signed32
from .costs import DEFAULT_COSTS, CostModel
from .libc import ExitProgram, LibC, StackArgs
from .memory import make_memory

__all__ = ["ControlSink", "EXIT_SENTINEL", "Machine", "RunResult",
           "run_binary"]


class ControlSink(Protocol):
    """Receiver of dynamic control-transfer events (the trace consumer)."""

    def transfer(self, src: int, dst: int, kind: str) -> None: ...

    def executed(self, addr: int) -> None: ...


@dataclass
class RunResult:
    """Outcome of one emulated execution."""

    exit_code: int
    stdout: bytes
    cycles: int
    instructions: int

    def matches(self, other: "RunResult") -> bool:
        """Functional equivalence: same observable behaviour."""
        return (self.exit_code == other.exit_code
                and self.stdout == other.stdout)


@dataclass
class Machine:
    """An emulator instance bound to one loaded binary image."""

    image: BinaryImage
    input_items: list[int | bytes] = field(default_factory=list)
    costs: CostModel = DEFAULT_COSTS
    max_instructions: int = 80_000_000
    stack_size: int = STACK_SIZE
    trace_sink: ControlSink | None = None
    #: Execute through the superblock engine (:mod:`repro.emu.blocks`).
    #: ``False`` selects the per-step reference path; the differential
    #: tests keep the two in lockstep.
    use_blocks: bool = True
    #: Optional pre-built block cache shared across machines (must be
    #: built over the same image and an equal cost model).
    blocks: BlockCache | None = None

    def __post_init__(self) -> None:
        self.mem = make_memory()
        self.mem.load_image(self.image)
        self.cpu = CPU()
        self.libc = LibC(self.mem, self.input_items)
        if self.blocks is not None and self.blocks.costs == self.costs:
            self.disasm = self.blocks.disasm
        elif self.use_blocks:
            self.blocks = shared_block_cache(self.image, self.costs,
                                             _HANDLERS)
            self.disasm = self.blocks.disasm
        else:
            self.disasm = Disassembler(self.image)
            self.blocks = None
        self.cycles = 0
        self.instructions = 0
        self._halted: int | None = None

    # -- operand access -----------------------------------------------------

    def _mem_addr(self, op: Mem) -> int:
        addr = op.disp if isinstance(op.disp, int) else 0
        if op.base is not None:
            addr += self.cpu.get(op.base)
        if op.index is not None:
            addr += self.cpu.get(op.index) * op.scale
        return addr & MASK32

    def _read(self, op, width: int | None = None) -> int:
        if isinstance(op, Reg):
            return self.cpu.get(op)
        if isinstance(op, Imm):
            return op.value & MASK32
        if isinstance(op, Mem):
            return self.mem.read(self._mem_addr(op), op.size)
        raise EmulationError(f"cannot read operand {op!r}")

    def _write(self, op, value: int) -> None:
        if isinstance(op, Reg):
            self.cpu.set(op, value)
        elif isinstance(op, Mem):
            self.mem.write(self._mem_addr(op), op.size, value)
        else:
            raise EmulationError(f"cannot write operand {op!r}")

    @staticmethod
    def _width_of(op) -> int:
        if isinstance(op, Reg):
            return op.width
        if isinstance(op, Mem):
            return op.size
        return 4

    # -- execution ----------------------------------------------------------

    def run(self) -> RunResult:
        """Run from the image entry point until ``hlt``, ``exit``, or a
        return from the entry function."""
        self.cpu.eip = self.image.entry
        self.cpu.set(ESP, STACK_TOP - 4)
        self.mem.write(STACK_TOP - 4, 4, EXIT_SENTINEL)
        rec = _obs_recorder()
        try:
            if self.use_blocks:
                if rec is not None:
                    self._run_blocks_observed(rec)
                else:
                    self._run_blocks()
            else:
                self._run_steps()
        except ExitProgram as exc:
            self._halted = exc.code
        if rec is not None:
            registry = rec.registry
            registry.count("emu.runs")
            registry.count("emu.instructions_retired", self.instructions)
            registry.count("emu.cycles", self.cycles)
            if self.blocks is not None:
                registry.gauge("emu.block_cache.size",
                               len(self.blocks._blocks))
        return RunResult(self._halted, bytes(self.libc.stdout),
                         self.cycles, self.instructions)

    def _run_blocks(self) -> None:
        """Superblock loop: decode-once blocks of pre-compiled closures.

        Coverage callbacks fire once per block per machine — sinks see
        each executed address at least once, and coverage is a set, so
        repeat visits add nothing (the per-step path reports every
        execution; both produce identical coverage sets).
        """
        block_at = self.blocks.block_at
        cpu = self.cpu
        sink = self.trace_sink
        seen: set[int] = set()
        budget = self.max_instructions
        while self._halted is None:
            addr = cpu.eip
            block = block_at(addr)
            if sink is not None and addr not in seen:
                seen.add(addr)
                executed = sink.executed
                for a in block.addrs:
                    executed(a)
            self.instructions += block.count
            self.cycles += block.cost
            for op in block.code:
                op(self)
            if self.instructions >= budget:
                raise EmulationError(
                    f"instruction budget exceeded ({budget})")

    def _run_blocks_observed(self, rec) -> None:
        """The superblock loop with observability: identical semantics
        to :meth:`_run_blocks` plus block-cache hit/miss accounting and
        the hot-block execution profile.  Selected only when a recorder
        is active, so the disabled path stays untouched."""
        blocks = self.blocks
        block_map = blocks._blocks
        block_at = blocks.block_at
        hot = rec.registry.profile("emu.hot_blocks").counts
        cpu = self.cpu
        sink = self.trace_sink
        seen: set[int] = set()
        budget = self.max_instructions
        hits = misses = 0
        try:
            while self._halted is None:
                addr = cpu.eip
                if addr in block_map:
                    hits += 1
                else:
                    misses += 1
                block = block_at(addr)
                hot[addr] = hot.get(addr, 0) + 1
                if sink is not None and addr not in seen:
                    seen.add(addr)
                    executed = sink.executed
                    for a in block.addrs:
                        executed(a)
                self.instructions += block.count
                self.cycles += block.cost
                for op in block.code:
                    op(self)
                if self.instructions >= budget:
                    raise EmulationError(
                        f"instruction budget exceeded ({budget})")
        finally:
            registry = rec.registry
            registry.count("emu.block_cache.hit", hits)
            registry.count("emu.block_cache.miss", misses)

    def _run_steps(self) -> None:
        """Reference per-step loop (seed semantics, kept for differential
        testing and cost-model experiments)."""
        while self._halted is None:
            self._step()
            if self.instructions >= self.max_instructions:
                raise EmulationError(
                    f"instruction budget exceeded "
                    f"({self.max_instructions})")

    def _step(self) -> None:
        instr = self.disasm.at(self.cpu.eip)
        if self.trace_sink is not None:
            self.trace_sink.executed(self.cpu.eip)
        self.instructions += 1
        self.cycles += self.costs.instruction_cost(instr)
        next_eip = self.cpu.eip + instr.size
        handler = _HANDLERS.get(instr.mnemonic)
        if handler is None:
            raise EmulationError(f"unimplemented {instr!r}")
        handler(self, instr, next_eip)

    def _transfer(self, dst: int, kind: str) -> None:
        if self.trace_sink is not None:
            self.trace_sink.transfer(self.cpu.eip, dst, kind)

    # -- instruction semantics ---------------------------------------------

    def _op_mov(self, instr: Instruction, next_eip: int) -> None:
        dst, src = instr.operands
        self._write(dst, self._read(src))
        self.cpu.eip = next_eip

    def _op_movzx(self, instr: Instruction, next_eip: int) -> None:
        dst, src = instr.operands
        self._write(dst, self._read(src))
        self.cpu.eip = next_eip

    def _op_movsx(self, instr: Instruction, next_eip: int) -> None:
        dst, src = instr.operands
        width = self._width_of(src)
        value = self._read(src)
        sign_bit = 1 << (8 * width - 1)
        if value & sign_bit:
            value |= MASK32 ^ ((1 << (8 * width)) - 1)
        self._write(dst, value)
        self.cpu.eip = next_eip

    def _op_lea(self, instr: Instruction, next_eip: int) -> None:
        dst, src = instr.operands
        if not isinstance(src, Mem):
            raise EmulationError(f"lea needs memory operand: {instr!r}")
        self._write(dst, self._mem_addr(src))
        self.cpu.eip = next_eip

    def _op_push(self, instr: Instruction, next_eip: int) -> None:
        value = self._read(instr.operands[0])
        esp = (self.cpu.get(ESP) - 4) & MASK32
        self.cpu.set(ESP, esp)
        self.mem.write(esp, 4, value)
        self.cpu.eip = next_eip

    def _op_pop(self, instr: Instruction, next_eip: int) -> None:
        esp = self.cpu.get(ESP)
        self._write(instr.operands[0], self.mem.read(esp, 4))
        self.cpu.set(ESP, (esp + 4) & MASK32)
        self.cpu.eip = next_eip

    def _arith(self, instr: Instruction, next_eip: int, op: str) -> None:
        dst, src = instr.operands
        a = self._read(dst)
        b = self._read(src)
        if op == "add":
            result = a + b
            self.cpu.flags.set_add(a, b, result)
        elif op == "sub":
            result = a - b
            self.cpu.flags.set_sub(a, b, result)
        elif op == "and":
            result = a & b
            self.cpu.flags.set_logic(result)
        elif op == "or":
            result = a | b
            self.cpu.flags.set_logic(result)
        else:  # xor
            result = a ^ b
            self.cpu.flags.set_logic(result)
        self._write(dst, result & MASK32)
        self.cpu.eip = next_eip

    def _op_add(self, i, n):
        self._arith(i, n, "add")

    def _op_sub(self, i, n):
        self._arith(i, n, "sub")

    def _op_and(self, i, n):
        self._arith(i, n, "and")

    def _op_or(self, i, n):
        self._arith(i, n, "or")

    def _op_xor(self, i, n):
        self._arith(i, n, "xor")

    def _op_neg(self, instr: Instruction, next_eip: int) -> None:
        dst = instr.operands[0]
        a = self._read(dst)
        result = (-a) & MASK32
        self.cpu.flags.set_sub(0, a, result)
        self._write(dst, result)
        self.cpu.eip = next_eip

    def _op_not(self, instr: Instruction, next_eip: int) -> None:
        dst = instr.operands[0]
        self._write(dst, (~self._read(dst)) & MASK32)
        self.cpu.eip = next_eip

    def _op_imul(self, instr: Instruction, next_eip: int) -> None:
        dst, src = instr.operands
        a = signed32(self._read(dst))
        b = signed32(self._read(src))
        result = a * b
        self._write(dst, result & MASK32)
        truncated = signed32(result)
        self.cpu.flags.cf = self.cpu.flags.of = truncated != result
        self.cpu.flags.zf = truncated == 0
        self.cpu.flags.sf = truncated < 0
        self.cpu.eip = next_eip

    def _op_cdq(self, instr: Instruction, next_eip: int) -> None:
        eax = self.cpu.get_name("eax")
        self.cpu.set_name("edx", MASK32 if eax & 0x80000000 else 0)
        self.cpu.eip = next_eip

    def _op_idiv(self, instr: Instruction, next_eip: int) -> None:
        divisor = signed32(self._read(instr.operands[0]))
        if divisor == 0:
            raise EmulationError("integer division by zero")
        dividend = (self.cpu.get_name("edx") << 32) | self.cpu.get_name("eax")
        if dividend >= 1 << 63:
            dividend -= 1 << 64
        quotient = int(dividend / divisor)  # C semantics: truncate to zero
        remainder = dividend - quotient * divisor
        if not -0x80000000 <= quotient <= 0x7FFFFFFF:
            raise EmulationError("idiv quotient overflow")
        self.cpu.set_name("eax", quotient & MASK32)
        self.cpu.set_name("edx", remainder & MASK32)
        self.cpu.eip = next_eip

    def _shift(self, instr: Instruction, next_eip: int, op: str) -> None:
        dst, count_op = instr.operands
        count = self._read(count_op) & 31
        a = self._read(dst)
        if op == "shl":
            result = (a << count) & MASK32
        elif op == "shr":
            result = (a & MASK32) >> count
        else:  # sar
            result = (signed32(a) >> count) & MASK32
        if count:
            self.cpu.flags.zf = result == 0
            self.cpu.flags.sf = bool(result & 0x80000000)
        self._write(dst, result)
        self.cpu.eip = next_eip

    def _op_shl(self, i, n):
        self._shift(i, n, "shl")

    def _op_shr(self, i, n):
        self._shift(i, n, "shr")

    def _op_sar(self, i, n):
        self._shift(i, n, "sar")

    def _op_inc(self, instr: Instruction, next_eip: int) -> None:
        dst = instr.operands[0]
        a = self._read(dst)
        result = (a + 1) & MASK32
        carry = self.cpu.flags.cf  # inc preserves CF, as on x86
        self.cpu.flags.set_add(a, 1, a + 1)
        self.cpu.flags.cf = carry
        self._write(dst, result)
        self.cpu.eip = next_eip

    def _op_dec(self, instr: Instruction, next_eip: int) -> None:
        dst = instr.operands[0]
        a = self._read(dst)
        result = (a - 1) & MASK32
        carry = self.cpu.flags.cf
        self.cpu.flags.set_sub(a, 1, a - 1)
        self.cpu.flags.cf = carry
        self._write(dst, result)
        self.cpu.eip = next_eip

    def _op_cmp(self, instr: Instruction, next_eip: int) -> None:
        a = self._read(instr.operands[0])
        b = self._read(instr.operands[1])
        self.cpu.flags.set_sub(a, b, a - b)
        self.cpu.eip = next_eip

    def _op_test(self, instr: Instruction, next_eip: int) -> None:
        a = self._read(instr.operands[0])
        b = self._read(instr.operands[1])
        self.cpu.flags.set_logic(a & b)
        self.cpu.eip = next_eip

    def _op_jmp(self, instr: Instruction, next_eip: int) -> None:
        target = self._read(instr.operands[0])
        self._transfer(target, "jump")
        self.cycles += self.costs.branch_taken
        self.cpu.eip = target

    def _op_jcc(self, instr: Instruction, next_eip: int) -> None:
        if self.cpu.flags.condition(instr.cc):
            target = self._read(instr.operands[0])
            self._transfer(target, "jump")
            self.cycles += self.costs.branch_taken
            self.cpu.eip = target
        else:
            self._transfer(next_eip, "fallthrough")
            self.cpu.eip = next_eip

    def _op_call(self, instr: Instruction, next_eip: int) -> None:
        target_op = instr.operands[0]
        if isinstance(target_op, ImportRef):
            self.cycles += self.costs.import_call
            self._transfer(next_eip, "import")
            result = self.libc.call(target_op.name,
                                    StackArgs(self.mem, self.cpu.get(ESP)))
            self.cpu.set_name("eax", result)
            self.cpu.eip = next_eip
            return
        target = self._read(target_op)
        esp = (self.cpu.get(ESP) - 4) & MASK32
        self.cpu.set(ESP, esp)
        self.mem.write(esp, 4, next_eip)
        self._transfer(target, "call")
        self.cpu.eip = target

    def _op_ret(self, instr: Instruction, next_eip: int) -> None:
        esp = self.cpu.get(ESP)
        target = self.mem.read(esp, 4)
        self.cpu.set(ESP, (esp + 4) & MASK32)
        if target == EXIT_SENTINEL:
            self._halted = self.cpu.get_name("eax")
            return
        self._transfer(target, "ret")
        self.cpu.eip = target

    def _op_leave(self, instr: Instruction, next_eip: int) -> None:
        ebp = self.cpu.get_name("ebp")
        self.cpu.set(ESP, ebp)
        self.cpu.set_name("ebp", self.mem.read(ebp, 4))
        self.cpu.set(ESP, (ebp + 4) & MASK32)
        self.cpu.eip = next_eip

    def _op_setcc(self, instr: Instruction, next_eip: int) -> None:
        self._write(instr.operands[0],
                    1 if self.cpu.flags.condition(instr.cc) else 0)
        self.cpu.eip = next_eip

    def _op_nop(self, instr: Instruction, next_eip: int) -> None:
        self.cpu.eip = next_eip

    def _op_hlt(self, instr: Instruction, next_eip: int) -> None:
        self._halted = self.cpu.get_name("eax")


_HANDLERS: dict[str, Callable[[Machine, Instruction, int], None]] = {
    name[4:]: getattr(Machine, name)
    for name in dir(Machine) if name.startswith("_op_")
}


def run_binary(image: BinaryImage,
               input_items: list[int | bytes] | None = None,
               trace_sink: ControlSink | None = None,
               costs: CostModel = DEFAULT_COSTS,
               max_instructions: int = 80_000_000,
               use_blocks: bool = True,
               blocks: BlockCache | None = None) -> RunResult:
    """Convenience wrapper: load, run, and return the result."""
    machine = Machine(image, list(input_items or []), costs=costs,
                      max_instructions=max_instructions,
                      trace_sink=trace_sink, use_blocks=use_blocks,
                      blocks=blocks)
    return machine.run()
