"""Native backend: lowering repro IR to machine code and linking."""

from .link import RECOMP_TEXT_BASE, compile_ir, lower_module, recompile_ir
from .lower import (
    RESULT_REGS,
    STACK_SWITCH_SAVE,
    FunctionLowerer,
    LowerOptions,
)

__all__ = [
    "FunctionLowerer", "LowerOptions", "RECOMP_TEXT_BASE", "RESULT_REGS",
    "STACK_SWITCH_SAVE", "compile_ir", "lower_module", "recompile_ir",
]
