"""Superblock engine: memory fast paths, cached-block semantics, and
block-level vs per-step differential checks."""

import pytest

from repro.emu import run_binary, trace_binary
from repro.emu.memory import Memory, PAGE_SIZE
from repro.errors import EmulationError
from repro.isa import (
    AH,
    AL,
    AsmFunction,
    AsmProgram,
    AX,
    EAX,
    EBX,
    Imm,
    Label,
    Mem,
    assemble,
    ins,
    jcc,
)


def run(items, use_blocks=True, **kw):
    prog = AsmProgram(functions=[AsmFunction("_start", list(items))])
    return run_binary(assemble(prog), [], use_blocks=use_blocks, **kw)


# -- memory fast paths ------------------------------------------------------


def test_cross_page_dword_read_write():
    mem = Memory()
    addr = 5 * PAGE_SIZE - 2  # two bytes in one page, two in the next
    mem.write(addr, 4, 0xDEADBEEF)
    assert mem.read(addr, 4) == 0xDEADBEEF
    # Byte-level view straddles the boundary correctly (little endian).
    assert [mem.read(addr + i, 1) for i in range(4)] == \
        [0xEF, 0xBE, 0xAD, 0xDE]
    # In-page accesses around it are untouched zero-fill.
    assert mem.read(addr - 4, 4) == 0
    assert mem.read(addr + 4, 4) == 0


def test_cross_page_write_preserves_neighbors():
    mem = Memory()
    boundary = 9 * PAGE_SIZE
    mem.write(boundary - 4, 4, 0x11111111)
    mem.write(boundary, 4, 0x22222222)
    mem.write(boundary - 2, 4, 0xAABBCCDD)  # straddles
    assert mem.read(boundary - 2, 4) == 0xAABBCCDD
    assert mem.read(boundary - 4, 2) == 0x1111
    assert mem.read(boundary + 2, 2) == 0x2222


def test_read_outside_address_space_raises():
    mem = Memory()
    with pytest.raises(EmulationError):
        mem.read(0xFFFFFFFE, 4)
    with pytest.raises(EmulationError):
        mem.write(-4, 4, 0)


def test_read_cstring_across_page_boundary():
    mem = Memory()
    addr = 3 * PAGE_SIZE - 5
    mem.write_bytes(addr, b"hello, world\x00")
    assert mem.read_cstring(addr) == b"hello, world"


def test_read_cstring_unterminated_raises():
    mem = Memory()
    addr = 2 * PAGE_SIZE
    mem.write_bytes(addr, b"x" * 64)
    with pytest.raises(EmulationError):
        mem.read_cstring(addr, limit=32)


# -- sub-register writes through the cached block path ----------------------


def subreg_program():
    return [
        ins("mov", EAX, Imm(0x11223344)),
        ins("mov", AL, Imm(0xAA)),        # -> 0x112233AA
        ins("mov", AH, Imm(0xBB)),        # -> 0x1122BBAA
        ins("mov", AX, Imm(0xCCDD)),      # -> 0x1122CCDD
        ins("mov", EBX, Imm(0)),          # split into a second block
        ins("hlt"),
    ]


def test_subregister_writes_preserve_high_bytes():
    blocks = run(subreg_program(), use_blocks=True)
    steps = run(subreg_program(), use_blocks=False)
    assert blocks.exit_code == steps.exit_code == 0x1122CCDD


def test_block_cache_replay_is_deterministic():
    # Same image executed twice: the second run replays cached blocks.
    prog = AsmProgram(
        functions=[AsmFunction("_start", subreg_program())])
    image = assemble(prog)
    first = run_binary(image, [])
    second = run_binary(image, [])
    assert first.exit_code == second.exit_code
    assert first.cycles == second.cycles
    assert first.instructions == second.instructions


# -- block-level trace accounting -------------------------------------------


def loop_program():
    return [
        ins("mov", EAX, Imm(0)),
        ins("mov", EBX, Imm(10)),
        "loop",
        ins("add", EAX, Imm(3)),
        ins("dec", EBX),
        jcc("ne", Label("loop")),
        ins("hlt"),
    ]


def test_block_coverage_matches_per_instruction():
    prog = AsmProgram(functions=[AsmFunction("_start", loop_program())])
    image = assemble(prog)
    blocks = trace_binary(image, [[]], use_blocks=True)
    steps = trace_binary(image, [[]], use_blocks=False)
    assert blocks.executed == steps.executed
    assert blocks.transfers == steps.transfers
    assert [r.cycles for r in blocks.results] == \
        [r.cycles for r in steps.results]
    assert [r.instructions for r in blocks.results] == \
        [r.instructions for r in steps.results]
    # Coverage is self-consistent with the block structure: every block
    # either ran completely or not at all.
    addrs = sorted(blocks.executed)
    assert addrs, "trace recorded no coverage"


def test_instruction_budget_enforced_through_blocks():
    items = ["forever", ins("jmp", Label("forever"))]
    prog = AsmProgram(functions=[AsmFunction("_start", items)])
    image = assemble(prog)
    for use_blocks in (True, False):
        with pytest.raises(EmulationError):
            run_binary(image, [], max_instructions=1000,
                       use_blocks=use_blocks)


def test_memory_operand_loop_differential():
    # Store/load through memory in a loop: exercises the Mem operand
    # closures (base+disp addressing) against the reference engine.
    buf = Mem(base=EBX, disp=0, size=4)
    items = [
        ins("mov", EBX, Imm(0x0D000000)),
        ins("mov", EAX, Imm(7)),
        ins("mov", buf, EAX),
        ins("mov", EAX, Imm(0)),
        "loop",
        ins("add", EAX, buf),
        ins("add", EBX, Imm(4)),
        ins("mov", buf, EAX),
        ins("cmp", EBX, Imm(0x0D000000 + 16)),
        jcc("ne", Label("loop")),
        ins("mov", EAX, buf),
        ins("hlt"),
    ]
    blocks = run(list(items), use_blocks=True)
    steps = run(list(items), use_blocks=False)
    assert blocks.exit_code == steps.exit_code
    assert blocks.cycles == steps.cycles
