#!/usr/bin/env python
"""Retrofitting a stack sanitizer onto a binary — the downstream
application the paper's introduction motivates.

Transformations that change the memory layout (AddressSanitizer-style
red zones) "cannot be applied to local or global variables" without
variable recovery (paper §1).  With WYTIWYG's recovered stack layout
they become a small IR pass:

* every recovered stack variable is enlarged with a trailing red zone;
* the red zone is filled with a canary at function entry;
* before every return the canaries are checked and the program aborts
  with a distinctive exit code if any was overwritten.

The example instruments a binary whose (lost) source contains an
off-by-one overflow that only triggers for large inputs, then shows the
sanitized recompilation catching it — and shows why the unsymbolized
lift could not be instrumented this way (its stack is one opaque byte
array with nothing to put red zones between).

Run: python examples/stack_sanitizer.py
"""

from repro import compile_source, run_binary, trace_binary
from repro.core import wytiwyg_lift
from repro.ir import Builder, Const, verify_module
from repro.ir.values import Alloca, Ret
from repro.lifting import EMUSTACK_NAME
from repro.opt import OptOptions, optimize_module
from repro.recompile import LowerOptions, recompile_ir

SANITIZER_ABORT = 66
CANARY = 0x7E57C0DE
RED_ZONE = 8

SOURCE = r"""
int sum_first(int n) {
    int buf[8];
    int other = 12345;
    int i;
    for (i = 0; i <= n; i++)    /* off-by-one: i == n overflows for n=8 */
        buf[i] = i * i;
    int s = 0;
    for (i = 0; i < 8; i++) s += buf[i];
    return s + other - 12345;
}

int main() {
    int n = read_int();
    printf("sum=%d\n", sum_first(n));
    return 0;
}
"""


def add_red_zones(module) -> int:
    """Enlarge every recovered variable, plant and check canaries."""
    guarded = 0
    for func in module.functions.values():
        allocas = [i for i in func.instructions()
                   if isinstance(i, Alloca) and i.var_name.startswith("sv_")]
        if not allocas:
            continue
        builder = Builder(func)
        entry = func.entry
        for alloca in allocas:
            alloca.size += RED_ZONE
            # Plant the canary right after the original object.
            index = entry.instrs.index(alloca) + 1
            from repro.ir.values import BinOp, Store
            addr = BinOp("add", alloca, Const(alloca.size - RED_ZONE))
            addr.block = entry
            entry.instrs.insert(index, addr)
            store = Store(addr, Const(CANARY), 4)
            store.block = entry
            entry.instrs.insert(index + 1, store)
            guarded += 1
        # Check every canary at each exit point: returns, and calls to
        # exit() (lifted programs leave through the latter).
        from repro.ir.values import CallExt
        anchors = []
        for block in func.blocks:
            if isinstance(block.terminator, Ret):
                anchors.append((block, block.terminator))
            for instr in block.instrs:
                if isinstance(instr, CallExt) and \
                        instr.ext_name == "exit":
                    anchors.append((block, instr))
        serial = 0
        for block, anchor in anchors:
            ret_index = block.instrs.index(anchor)
            check_block = block
            for alloca in allocas:
                serial += 1
                from repro.ir.values import BinOp, ICmp, Load
                addr = BinOp("add", alloca,
                             Const(alloca.size - RED_ZONE))
                load = Load(addr, 4)
                bad = ICmp("ne", load, Const(CANARY))
                for instr in (addr, load, bad):
                    instr.block = check_block
                    check_block.instrs.insert(ret_index, instr)
                    ret_index += 1
                # On corruption: exit(SANITIZER_ABORT).
                ok_block = func.add_block(
                    f"{block.name}.san{serial}.ok")
                fail_block = func.add_block(
                    f"{block.name}.san{serial}.fail")
                fb = Builder(func)
                fb.position(fail_block)
                fb.call_external("exit", [Const(SANITIZER_ABORT)])
                fb.unreachable("sanitizer abort")
                tail = check_block.instrs[ret_index:]
                check_block.instrs = check_block.instrs[:ret_index]
                from repro.ir.values import CondBr
                br = CondBr(bad, fail_block, ok_block)
                br.block = check_block
                check_block.instrs.append(br)
                for instr in tail:
                    instr.block = ok_block
                ok_block.instrs = tail
                check_block = ok_block
                ret_index = ok_block.instrs.index(anchor)
    return guarded


def main() -> None:
    image = compile_source(SOURCE, "gcc12", "3", "sanitize")
    print("native, in-bounds input:",
          run_binary(image, [5]).stdout.decode().strip())
    print("native, overflowing input (silent corruption!):",
          run_binary(image, [8]).stdout.decode().strip())

    traces = trace_binary(image.stripped(), [[5]])
    module, layouts, _notes, _report = wytiwyg_lift(traces)
    assert EMUSTACK_NAME not in module.globals, \
        "unsymbolized lifts have no variables to guard"
    guarded = add_red_zones(module)
    verify_module(module)
    print(f"\nsanitizer: planted red zones on {guarded} recovered "
          f"stack variables")
    optimize_module(module, OptOptions.o1())  # keep the guards (no DSE
    # of escaping canary stores is attempted at O1 anyway)
    sanitized = recompile_ir(module, LowerOptions(frame_pointer=False))

    ok = run_binary(sanitized, [5])
    print(f"sanitized, in-bounds input: {ok.stdout.decode().strip()} "
          f"(exit {ok.exit_code})")
    assert ok.exit_code == 0

    bad = run_binary(sanitized, [8])
    print(f"sanitized, overflowing input: exit code {bad.exit_code} "
          f"(sanitizer abort is {SANITIZER_ABORT})")
    assert bad.exit_code == SANITIZER_ABORT
    print("overflow caught ✔")


if __name__ == "__main__":
    main()
