"""Pipeline-stage wall-time benches: tracing, lifting, refinement,
lowering.  These measure the toolchain itself (not the paper's runtime
metric) and watch for pathological slowdowns in the implementation."""

import pytest

from repro.cc import compile_source
from repro.emu import trace_binary
from repro.core.driver import wytiwyg_lift
from repro.lifting import lift_traces
from repro.opt import OptOptions, optimize_module
from repro.recompile import LowerOptions, recompile_ir
SOURCE = r"""
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int sum(int *a, int n) { int s = 0; for (int i = 0; i < n; i++) s += a[i]; return s; }
int main() {
    int arr[8];
    int i;
    for (i = 0; i < 8; i++) arr[i] = i * 3;
    printf("fib=%d sum=%d\n", fib(9), sum(arr, 8));
    return 0;
}
"""


@pytest.fixture(scope="module")
def image():
    return compile_source(SOURCE, "gcc12", "3", "bench")


@pytest.fixture(scope="module")
def traces(image):
    return trace_binary(image.stripped(), [[]])


def test_bench_tracing(benchmark, image):
    benchmark(lambda: trace_binary(image.stripped(), [[]]))


def test_bench_lifting(benchmark, traces):
    benchmark(lambda: lift_traces(traces))


def test_bench_refinement_pipeline(benchmark, traces):
    benchmark(lambda: wytiwyg_lift(traces))


def test_bench_optimize_and_lower(benchmark, traces):
    import copy

    pristine, _, _, _ = wytiwyg_lift(traces)

    # Each invocation gets its own copy: optimize_module mutates the
    # module in place, so reusing one object across rounds would measure
    # re-optimizing already-optimized IR (under the incremental pass
    # manager, a pure skip) instead of the real cost.
    def setup():
        return (copy.deepcopy(pristine),), {}

    def lower(module):
        optimize_module(module, OptOptions.o2())
        return recompile_ir(module, LowerOptions(frame_pointer=False))

    benchmark.pedantic(lower, setup=setup, rounds=1, iterations=1)
