"""sjeng stand-in: game-tree search — alpha-beta negamax over a
pick-up-sticks variant with positional scoring; deep recursion with
per-frame move arrays."""

from __future__ import annotations

from .base import Workload

SOURCE = r"""
int heaps[8];
int n_heaps;
int nodes_visited;

int position_score() {
    int score = 0;
    int i;
    for (i = 0; i < n_heaps; i++) {
        int h = heaps[i];
        score = score + (h & 1) * 3 - (h > 4 ? h - 4 : 0);
    }
    return score;
}

int negamax(int depth, int alpha, int beta) {
    nodes_visited = nodes_visited + 1;
    int total = 0;
    int i;
    for (i = 0; i < n_heaps; i++) total = total + heaps[i];
    if (total == 0) return -1000 + depth;   /* no moves: loss */
    if (depth == 0) return position_score();

    int moves_from[24];
    int moves_take[24];
    int n_moves = 0;
    for (i = 0; i < n_heaps; i++) {
        int take;
        for (take = 1; take <= 3 && take <= heaps[i]; take++) {
            moves_from[n_moves] = i;
            moves_take[n_moves] = take;
            n_moves = n_moves + 1;
        }
    }
    int best = -100000;
    int m;
    for (m = 0; m < n_moves; m++) {
        int h = moves_from[m];
        int t = moves_take[m];
        heaps[h] = heaps[h] - t;
        int score = -negamax(depth - 1, -beta, -alpha);
        heaps[h] = heaps[h] + t;
        if (score > best) best = score;
        if (best > alpha) alpha = best;
        if (alpha >= beta) break;           /* alpha-beta cutoff */
    }
    return best;
}

int main() {
    n_heaps = read_int();
    int depth = read_int();
    int i;
    for (i = 0; i < n_heaps; i++) heaps[i] = read_int();
    printf("position:");
    for (i = 0; i < n_heaps; i++) printf(" %d", heaps[i]);
    printf("\n");
    int d;
    for (d = 2; d <= depth; d++) {
        nodes_visited = 0;
        int score = negamax(d, -100000, 100000);
        printf("depth %d: score %d (%d nodes)\n",
               d, score, nodes_visited);
    }
    return 0;
}
"""

WORKLOAD = Workload(
    name="sjeng",
    source=SOURCE,
    ref_inputs=(
        (4, 5, 3, 3, 2, 2),
    ),
    description="alpha-beta game search with per-frame move lists",
)
