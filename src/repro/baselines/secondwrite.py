"""SecondWrite baseline: static lifting with heuristic stack splitting.

Models the comparison system of the paper's evaluation (§6): a *static*
binary-to-IR recompiler that

* disassembles with a linear sweep and recovers the CFG statically —
  and therefore **fails** on binaries with indirect jumps or calls whose
  targets it cannot enumerate (the paper reports exactly this class of
  failure: missing jump-table targets, unsupported relocations);
* classifies register arguments with ABI conventions (callee-saved
  registers are never arguments; caller-saved registers are arguments if
  read before written) instead of WYTIWYG's dynamic analysis;
* recovers variadic call prototypes only when the format string is a
  compile-time constant;
* splits stack frames **conservatively**: a frame is divided at the
  statically provable constant offsets only if no indexed or derived
  pointer arithmetic touches it — otherwise the whole frame collapses
  into a single symbol (the paper: "SecondWrite associates all local
  variables of functions beyond a certain complexity with a single
  symbol").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..binary.image import BinaryImage
from ..errors import LiftError
from ..ir.module import Function, Module
from ..ir.values import (
    Alloca,
    BinOp,
    CallExt,
    Const,
    Instr,
    Load,
    Param,
    Phi,
    Store,
)
from ..isa.disassembler import Disassembler
from ..isa.instructions import Imm, ImportRef, Instruction
from ..isa.registers import Reg
from ..lifting.cfg import _BLOCK_ENDERS, MachineBlock, RecoveredCFG
from ..lifting.function_recovery import recover_functions
from ..lifting.translator import REG_ORDER, FunctionTranslator
from ..opt.dce import eliminate_dead_code
from ..opt.deadargelim import shrink_signatures
from ..opt.pipeline import OptOptions, optimize_module
from ..recompile.link import recompile_ir
from ..recompile.lower import LowerOptions
from ..core.extfuncs import EXTERNAL_DB
from ..core.regsave import (
    RegSaveResult,
    apply_register_classification,
    classify_statically,
)
from ..core.replace import drop_sp_threading
from ..core.sp0fold import (
    classify_stack_refs,
    compute_sp0_offsets,
    is_lifted_function,
)


class SecondWriteError(LiftError):
    """The static pipeline cannot handle this binary."""


# ---------------------------------------------------------------------------
# Static CFG recovery (linear sweep)
# ---------------------------------------------------------------------------


def static_cfg(image: BinaryImage) -> RecoveredCFG:
    disasm = Disassembler(image)
    instrs = disasm.linear()
    by_addr = {i.addr: i for i in instrs}

    leaders: set[int] = {image.entry}
    for instr in instrs:
        if instr.mnemonic in ("jmp", "jcc", "call"):
            op = instr.operands[0]
            if isinstance(op, Imm):
                leaders.add(op.value)
                leaders.add(instr.addr + instr.size)
            elif isinstance(op, ImportRef):
                leaders.add(instr.addr + instr.size)
            else:
                raise SecondWriteError(
                    f"indirect control flow at {instr.addr:#x} "
                    f"(static disassembly cannot enumerate targets)")

    cfg = RecoveredCFG(image, entry=image.entry)
    for leader in sorted(leaders):
        if leader not in by_addr or leader in cfg.blocks:
            continue
        block = MachineBlock(leader)
        addr = leader
        while True:
            instr = by_addr[addr]
            block.instrs.append(instr)
            nxt = addr + instr.size
            if instr.mnemonic in _BLOCK_ENDERS or \
                    instr.mnemonic == "call" or nxt in leaders \
                    or nxt not in by_addr:
                break
            addr = nxt
        cfg.blocks[leader] = block

    for block in cfg.blocks.values():
        term = block.terminator
        addr = term.addr
        nxt = addr + term.size
        if term.mnemonic == "jmp":
            block.succs = [term.operands[0].value]
        elif term.mnemonic == "jcc":
            block.succs = sorted({term.operands[0].value, nxt}
                                 & set(cfg.blocks))
        elif term.mnemonic == "call":
            op = term.operands[0]
            if isinstance(op, Imm):
                cfg.call_targets[addr] = {op.value}
            block.succs = [nxt] if nxt in cfg.blocks else []
        elif term.mnemonic in ("ret", "hlt"):
            block.succs = []
        else:
            block.succs = [nxt] if nxt in cfg.blocks else []
    return cfg


# ---------------------------------------------------------------------------
# Static variadic-call recovery (constant format strings only)
# ---------------------------------------------------------------------------


def _constant_pushes(block: MachineBlock, call: Instruction,
                     image: BinaryImage) -> list[int | None]:
    """Abstractly evaluate the block up to ``call``: the stack of pushed
    constants (innermost last).  Non-constant pushes become None."""
    regs: dict[int, int | None] = {}
    pushed: list[int | None] = []
    for instr in block.instrs:
        if instr is call:
            break
        m = instr.mnemonic
        if m == "mov" and isinstance(instr.operands[0], Reg) \
                and instr.operands[0].width == 4:
            src = instr.operands[1]
            if isinstance(src, Imm):
                regs[instr.operands[0].index] = src.value
            elif isinstance(src, Reg) and src.width == 4:
                regs[instr.operands[0].index] = regs.get(src.index)
            else:
                regs[instr.operands[0].index] = None
        elif m == "push":
            op = instr.operands[0]
            if isinstance(op, Imm):
                pushed.append(op.value)
            elif isinstance(op, Reg) and op.width == 4:
                pushed.append(regs.get(op.index))
            else:
                pushed.append(None)
        elif m == "pop":
            if pushed:
                pushed.pop()
            if isinstance(instr.operands[0], Reg):
                regs[instr.operands[0].index] = None
        else:
            # Anything else invalidates register knowledge conservatively.
            for op in instr.operands:
                if isinstance(op, Reg):
                    regs[op.index] = None
    return pushed


def _read_cstring(image: BinaryImage, addr: int) -> bytes | None:
    section = image.section_at(addr)
    if section is None:
        return None
    data = section.data
    off = addr - section.base
    end = data.find(b"\x00", off)
    if end < 0:
        return None
    return data[off:end]


class _StaticTranslator(FunctionTranslator):
    """Translator variant with static variadic-prototype recovery."""

    def __init__(self, *args, current_mblock=None, **kwargs):
        super().__init__(*args, **kwargs)
        self._current_mblock = None

    def _translate_block(self, addr: int) -> None:
        self._current_mblock = self.rfunc.blocks[addr]
        super()._translate_block(addr)

    def _translate_import(self, instr: Instruction, name: str) -> None:
        from ..emu.libc import parse_format
        sig = EXTERNAL_DB.get(name)
        if sig is None:
            raise SecondWriteError(f"unknown external {name!r}")
        if not sig.vararg:
            super()._translate_import(instr, name)
            return
        pushed = _constant_pushes(self._current_mblock, instr,
                                  self.cfg.image)
        fmt_index = sig.format_arg if sig.format_arg is not None else 0
        # cdecl: the last pushes are the first arguments.
        args_on_stack = list(reversed(pushed))
        fmt_addr = args_on_stack[fmt_index] \
            if fmt_index < len(args_on_stack) else None
        fmt = _read_cstring(self.cfg.image, fmt_addr) \
            if fmt_addr is not None else None
        if fmt is None:
            raise SecondWriteError(
                f"non-constant format string for {name} at "
                f"{instr.addr:#x}")
        nargs = sig.nargs + len(parse_format(fmt))
        esp = self._rread_name("esp")
        args = [self.b.load(esp if i == 0
                            else self.b.add(esp, Const(4 * i)), 4)
                for i in range(nargs)]
        self._rwrite_name("eax", self.b.call_external(name, args))


# ---------------------------------------------------------------------------
# Conservative stack splitting
# ---------------------------------------------------------------------------


@dataclass
class SplitReport:
    #: functions whose frame collapsed to one symbol
    collapsed: list[str] = field(default_factory=list)
    #: functions split into fine-grained symbols
    split: list[str] = field(default_factory=list)


def _frame_is_complex(func: Function, offsets: dict) -> bool:
    """Any derived (non-constant) pointer arithmetic over stack refs?"""
    for instr in func.instructions():
        if isinstance(instr, BinOp) and instr.opcode in ("add", "sub"):
            lhs_known = instr.lhs in offsets
            rhs_known = instr.rhs in offsets
            if lhs_known and not isinstance(instr.rhs, Const) \
                    and instr not in offsets:
                return True
            if rhs_known and not isinstance(instr.lhs, Const) \
                    and instr not in offsets:
                return True
        if isinstance(instr, Phi) and instr not in offsets:
            if any(op in offsets for op in instr.ops):
                return True
    return False


def split_frames_statically(module: Module,
                            stack_splitting: bool = True) -> SplitReport:
    """Replace each function's frame with allocas: fine-grained when the
    frame is statically simple, one symbol otherwise."""
    from ..core.layout import FrameLayout, FrameVariable
    from ..core.instrument import (FunctionInstrumentation,
                                   ModuleInstrumentation)
    from ..core.replace import replace_base_pointers
    from ..core.runtime import TracingRuntime
    from ..core.signatures import SignaturePlan

    report = SplitReport()
    mi = ModuleInstrumentation()
    layouts: dict[str, FrameLayout] = {}
    plan = SignaturePlan()
    runtime = TracingRuntime()

    # First pass: per-function static layouts and argument counts.
    ref_id = 0
    for name, func in module.functions.items():
        if not is_lifted_function(func):
            continue
        refs = classify_stack_refs(func)
        offsets = func.meta["sp0_offsets"]
        fi = FunctionInstrumentation(func)
        frame_offs = sorted({off for off in refs.values() if off < 0})
        arg_offs = [off for off in refs.values() if off >= 4]
        layout = FrameLayout(name)
        complex_frame = _frame_is_complex(func, offsets) \
            or not stack_splitting
        if frame_offs:
            if complex_frame:
                report.collapsed.append(name)
                var = FrameVariable(frame_offs[0], 0)
                layout.variables = [var]
            else:
                report.split.append(name)
                bounds = frame_offs + [0]
                layout.variables = [
                    FrameVariable(lo, hi)
                    for lo, hi in zip(bounds, bounds[1:], strict=False)
                ]
        for value, off in refs.items():
            fi.refs[ref_id] = (value, off)
            if off < 0:
                home = None
                for var in layout.variables:
                    if var.start <= off < var.end or \
                            (var is layout.variables[-1]
                             and off >= var.start):
                        home = var
                        break
                if home is None:
                    home = layout.variables[0]
                home.ref_ids.add(ref_id)
                layout.ref_to_var[ref_id] = home
            ref_id += 1
        layouts[name] = layout
        mi.functions[name] = fi
        plan.stack_args[name] = max(
            ((off - 4) // 4 + 1 for off in arg_offs), default=0)

    # Call-site argument counts follow the callee's static signature.
    from ..ir.values import Call
    callsite_id = 0
    for name, fi in mi.functions.items():
        func = module.functions[name]
        for instr in func.instructions():
            if isinstance(instr, Call) and \
                    instr.callee.name in plan.stack_args:
                fi.callsites[callsite_id] = instr
                plan.callsite_args[callsite_id] = \
                    plan.stack_args[instr.callee.name]
                callsite_id += 1

    replace_base_pointers(module, mi, layouts, plan, runtime)
    for func in module.functions.values():
        eliminate_dead_code(func)
    drop_sp_threading(module)
    for func in module.functions.values():
        eliminate_dead_code(func)
    shrink_signatures(module)
    return report


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


@dataclass
class SecondWriteResult:
    module: Module
    recovered: BinaryImage
    report: SplitReport


def secondwrite_lift(image: BinaryImage,
                     stack_splitting: bool = True) -> tuple[Module,
                                                            SplitReport]:
    cfg = static_cfg(image)
    functions = recover_functions(cfg)
    if cfg.entry not in functions:
        raise SecondWriteError("entry function not recovered")

    module = Module("secondwrite")
    module.metadata = {"origin": "secondwrite", **image.metadata}
    from ..ir.module import GlobalVar
    from ..lifting.translator import (EMUSTACK_BASE, EMUSTACK_NAME,
                                      EMUSTACK_SIZE)
    for section in image.data_sections:
        module.add_global(GlobalVar(
            f"orig{section.name.replace('.', '_')}", len(section.data),
            section.data, align=4, fixed_addr=section.base,
            writable=section.writable))
    module.add_global(GlobalVar(EMUSTACK_NAME, EMUSTACK_SIZE, b"",
                                align=16, fixed_addr=EMUSTACK_BASE))
    entries = set(functions)
    for entry, rfunc in functions.items():
        translator = _StaticTranslator(rfunc, cfg, module, entries)
        module.add_function(translator.translate())
        module.address_table[entry] = rfunc.name

    from ..ir.builder import Builder
    from ..ir.values import GlobalRef
    start = Function("_start", [])
    module.add_function(start)
    module.entry_name = "_start"
    b = Builder(start)
    b.position(start.add_block("entry"))
    top = b.add(GlobalRef(EMUSTACK_NAME), Const(EMUSTACK_SIZE - 64))
    b.call(functions[cfg.entry].name,
           [top] + [Const(0)] * len(REG_ORDER),
           nresults=len(REG_ORDER))
    b.ret([Const(0)])

    # Static refinements.
    apply_register_classification(module, classify_statically(module))
    from ..core.driver import _canonicalize
    _canonicalize(module)
    report = split_frames_statically(module, stack_splitting)
    return module, report


def secondwrite_recompile(image: BinaryImage,
                          stack_splitting: bool = True,
                          optimize: bool = True) -> SecondWriteResult:
    """End-to-end static recompilation. Raises SecondWriteError on the
    binaries the static approach cannot handle."""
    module, report = secondwrite_lift(image, stack_splitting)
    if optimize:
        optimize_module(module, OptOptions(level=2, rounds=2))
    recovered = recompile_ir(
        module, LowerOptions(frame_pointer=False),
        metadata={**image.metadata, "pipeline": "secondwrite"})
    return SecondWriteResult(module, recovered, report)
