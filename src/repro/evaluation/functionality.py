"""Functionality matrix (paper §6.1): does every benchmark lift and
recompile with its observable behaviour preserved, in every input-binary
configuration and for every pipeline?"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..workloads import WORKLOADS
from .harness import CONFIGS, sweep


@dataclass
class FunctionalityMatrix:
    workloads: tuple = ()
    configs: tuple = CONFIGS
    #: (workload, config-key) -> {"binrec": bool, "wytiwyg": bool,
    #: "secondwrite": bool|None (None = unsupported)}
    cells: dict = field(default_factory=dict)

    def all_pass(self, pipeline: str) -> bool:
        for value in self.cells.values():
            status = value[pipeline]
            if status is False:
                return False
        return True

    def render(self) -> str:
        keys = [f"{c}-O{o}" for c, o in self.configs]
        lines = ["  ".join([f"{'benchmark':>12s}"]
                           + [f"{k:>22s}" for k in keys])]
        for name in self.workloads:
            cells = []
            for c, o in self.configs:
                v = self.cells[(name, f"{c}-O{o}")]
                sw = ("—" if v["secondwrite"] is None
                      else ("ok" if v["secondwrite"] else "FAIL"))
                cells.append(f"br:{'ok' if v['binrec'] else 'FAIL'} "
                             f"wy:{'ok' if v['wytiwyg'] else 'FAIL'} "
                             f"sw:{sw}")
            lines.append("  ".join([f"{name:>12s}"]
                                   + [f"{c:>22s}" for c in cells]))
        return "\n".join(lines)


def build_functionality(workload_names: tuple[str, ...] | None = None,
                        use_cache: bool = True,
                        progress=None,
                        jobs: int = 1) -> FunctionalityMatrix:
    names = workload_names or tuple(WORKLOADS)
    cells = sweep(names, CONFIGS, use_cache=use_cache, progress=progress,
                  jobs=jobs)
    matrix = FunctionalityMatrix(names, CONFIGS)
    for name in names:
        for compiler, opt in CONFIGS:
            cell = cells[(name, compiler, opt)]
            matrix.cells[(name, f"{compiler}-O{opt}")] = {
                "binrec": cell.binrec_match,
                "wytiwyg": cell.wytiwyg_match,
                "secondwrite": (None if cell.secondwrite_error
                                else cell.secondwrite_match),
            }
    return matrix
