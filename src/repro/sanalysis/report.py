"""Findings and the structured check report.

Every static-analysis result — corroboration verdicts and sanitizer
lints alike — is a :class:`Finding` with a severity, a kind, the
function it lives in, the frame offsets involved, and free-form
provenance (which pass produced it, from what evidence).  A
:class:`CheckReport` aggregates them for the pipeline gate, the
``python -m repro check`` subcommand, and the observability export.
"""

from __future__ import annotations

from dataclasses import dataclass, field

SEVERITIES = ("error", "warning", "info")

#: Corroboration kinds (static vs dynamic layout diff).
UNSOUND_SPLIT = "unsound-split"
COVERAGE_GAP = "coverage-gap"
#: Sanitizer kinds (flow-sensitive lints over symbolized IR).
UNINIT_READ = "uninit-read"
OOB_ACCESS = "oob-access"
ESCAPED_FRAME_POINTER = "escaped-frame-pointer"
ALIAS_DIVERGENCE = "alias-divergence"
#: Interprocedural kinds (call-graph summaries, extern recovery).
ESCAPED_SPLIT = "escaped-split"
EXTERN_DIVERGENCE = "extern-divergence"
EXTERN_CANDIDATE = "extern-candidate"

KINDS = (UNSOUND_SPLIT, COVERAGE_GAP, UNINIT_READ, OOB_ACCESS,
         ESCAPED_FRAME_POINTER, ALIAS_DIVERGENCE,
         ESCAPED_SPLIT, EXTERN_DIVERGENCE, EXTERN_CANDIDATE)


@dataclass
class Finding:
    """One static-analysis finding."""

    severity: str
    kind: str
    func: str
    message: str
    #: sp0-relative byte offset the finding anchors to (layout findings)
    #: or alloca-relative offset (sanitizer findings); None when the
    #: finding is not offset-shaped.
    offset: int | None = None
    width: int | None = None
    #: Evidence trail: which pass, what static/dynamic ranges, whether
    #: the access sits on a traced or statically-extended path, ...
    provenance: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"bad severity {self.severity!r}")
        if self.kind not in KINDS:
            raise ValueError(f"bad finding kind {self.kind!r}")

    def to_dict(self) -> dict:
        doc: dict = {"severity": self.severity, "kind": self.kind,
                     "func": self.func, "message": self.message}
        if self.offset is not None:
            doc["offset"] = self.offset
        if self.width is not None:
            doc["width"] = self.width
        if self.provenance:
            doc["provenance"] = dict(self.provenance)
        return doc

    def render(self) -> str:
        where = self.func
        if self.offset is not None:
            where += f" @ {self.offset:+d}"
            if self.width is not None:
                where += f"..{self.offset + self.width:+d}"
        return f"{self.severity:7s} {self.kind:22s} {where}: {self.message}"


@dataclass
class CheckReport:
    """All findings of one pipeline run, ordered by discovery."""

    findings: list[Finding] = field(default_factory=list)
    #: Widenings suggested by the corroboration pass, serialized as
    #: ``{"func", "start", "end", "applied"}`` rows.
    widenings: list[dict] = field(default_factory=list)

    def add(self, finding: Finding) -> Finding:
        self.findings.append(finding)
        return finding

    def extend(self, findings) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def infos(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "info"]

    def by_kind(self, kind: str) -> list[Finding]:
        return [f for f in self.findings if f.kind == kind]

    def counts(self) -> dict[str, int]:
        out = {s: 0 for s in SEVERITIES}
        for f in self.findings:
            out[f.severity] += 1
        return out

    def to_dict(self) -> dict:
        return {"findings": [f.to_dict() for f in self.findings],
                "widenings": [dict(w) for w in self.widenings],
                "counts": self.counts()}

    def render(self) -> str:
        """Human-readable report for the ``check`` subcommand."""
        lines = [f.render() for f in self.findings]
        counts = self.counts()
        lines.append(
            f"sanalysis: {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} info")
        if self.widenings:
            applied = sum(1 for w in self.widenings if w.get("applied"))
            lines.append(
                f"sanalysis: {len(self.widenings)} widening "
                f"suggestion(s), {applied} applied")
        return "\n".join(lines)
