"""Engine-parity differentials on real workloads.

The acceptance property of the execution engines: the cached-block
machine and the compiled IR interpreter must be observationally
equivalent to their per-step reference paths — byte-identical program
output, equal merged trace sets, and equal recovered frame layouts.
"""

import pytest

from repro.core.driver import wytiwyg_lift
from repro.emu import trace_binary
from repro.ir.interp import Interpreter
from repro.workloads import WORKLOADS

PARITY_WORKLOADS = ("mcf", "gcc", "hmmer")


@pytest.fixture(scope="module", params=PARITY_WORKLOADS)
def traced_pair(request):
    workload = WORKLOADS[request.param]
    image = workload.compile("gcc12", "3").stripped()
    inputs = workload.inputs()
    blocks = trace_binary(image, inputs, use_blocks=True)
    steps = trace_binary(image, inputs, use_blocks=False)
    return blocks, steps


def test_run_results_byte_identical(traced_pair):
    blocks, steps = traced_pair
    assert len(blocks.results) == len(steps.results)
    for got, want in zip(blocks.results, steps.results, strict=True):
        assert got.stdout == want.stdout
        assert got.exit_code == want.exit_code
        assert got.cycles == want.cycles
        assert got.instructions == want.instructions


def test_merged_trace_sets_equal(traced_pair):
    blocks, steps = traced_pair
    assert blocks.executed == steps.executed
    assert blocks.transfers == steps.transfers
    assert blocks.inputs == steps.inputs


def test_recovered_layouts_equal(traced_pair):
    blocks, steps = traced_pair
    _, layouts_blocks, _, _ = wytiwyg_lift(blocks)
    _, layouts_steps, _, _ = wytiwyg_lift(steps)
    assert layouts_blocks == layouts_steps


def test_compiled_interpreter_layouts_match_reference(monkeypatch):
    # Same traces through the refinement pipeline with the compiled IR
    # engine on and off: identical layouts and notes.
    workload = WORKLOADS["mcf"]
    image = workload.compile("gcc12", "3").stripped()
    traces = trace_binary(image, workload.inputs())
    monkeypatch.setenv("REPRO_IR_COMPILED", "1")
    module_c, layouts_c, notes_c, _ = wytiwyg_lift(traces)
    monkeypatch.setenv("REPRO_IR_COMPILED", "0")
    module_r, layouts_r, notes_r, _ = wytiwyg_lift(traces)
    assert layouts_c == layouts_r
    assert notes_c == notes_r
    # And the refined modules behave identically on the traced inputs.
    for items, expected in zip(traces.inputs, traces.results,
                               strict=True):
        got_c = Interpreter(module_c, items).run()
        got_r = Interpreter(module_r, items).run()
        assert got_c.stdout == got_r.stdout == expected.stdout
        assert got_c.exit_code == got_r.exit_code == \
            expected.exit_code & 0xFFFFFFFF
