"""repro.sanalysis — the static leg of layout recovery.

WYTIWYG's dynamic recovery is exact for traced paths and blind past
them (paper §4.2, §6).  This package adds the trust boundary between
tracing and recompilation:

* :mod:`.absint` — VSA-lite abstract interpretation of sp0-relative
  offsets over the pre-symbolization IR (interval domain, widening at
  loop headers, memoized in the versioned CFG-analysis cache);
* :mod:`.corroborate` — diffs the static access set against the
  dynamically recovered :class:`~repro.core.layout.FrameLayout`:
  boundary-straddling accesses are ``unsound-split`` errors, statically
  reachable but untraced bytes are ``coverage-gap`` warnings with
  widening suggestions (`REPRO_STATIC_WIDEN=1` applies them);
* :mod:`.sanitize` — flow-sensitive lints over the symbolized IR
  (uninitialized reads, constant-offset out-of-bounds accesses,
  escaped frame pointers cross-checked against alias analysis);
* :mod:`.report` — :class:`Finding` / :class:`CheckReport`, consumed by
  the pipeline gate (``REPRO_CHECK=1`` / ``--check``), the ``python -m
  repro check`` subcommand, and the observability export
  (``sanalysis.findings.{error,warning}`` counters, per-function
  spans).
"""

from .absint import (
    AbsVal,
    FrameAccessSet,
    StaticAccess,
    analyze_function,
    analyze_module,
)
from .corroborate import (
    WideningSuggestion,
    corroborate_function,
    corroborate_layouts,
)
from .report import CheckReport, Finding
from .sanitize import sanitize_function, sanitize_module

__all__ = [
    "AbsVal", "CheckReport", "Finding", "FrameAccessSet",
    "StaticAccess", "WideningSuggestion", "analyze_function",
    "analyze_module", "corroborate_function", "corroborate_layouts",
    "sanitize_function", "sanitize_module",
]
