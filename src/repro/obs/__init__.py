"""repro.obs — observability for the refinement pipeline.

Structured tracing spans, a metrics registry (counters, gauges,
histograms, timers, profiles), and report generation, threaded through
every pipeline layer:

* the **driver** wraps its stages (trace -> lift -> varargs ->
  regsave -> canonicalize -> bounds -> sanitize -> optimize ->
  recompile) in named spans carrying wall time, IR size deltas, and
  verifier status;
* the **static corroborator** (``repro.sanalysis``) counts findings by
  severity (``sanalysis.findings.{error,warning,info}``) and wraps each
  analyzed function in ``sanalysis.function`` / ``sanitize.function``
  spans under ``stage.sanalysis`` / ``stage.sanitize``;
* the **emulator** reports block-cache hits/misses/evictions,
  instructions retired, memory fast/slow-path counts, and a hot-block
  profile;
* the **IR interpreter** reports compiled-closure cache invalidations
  and per-function execution counts;
* the **optimizer** reports per-pass instruction deltas and timings
  (the two CFG-simplification slots appear as ``opt.pass.
  simplifycfg.entry`` / ``.exit``); its worklist manager additionally
  counts functions it proved unchanged (``opt.manager.skipped``,
  ``opt.manager.memo_hits``), functions re-enqueued after inlining
  (``opt.manager.requeued``), and analysis results migrated across
  mutations instead of recomputed (``analysis.cache.retained``);
* the **evaluation harness** and ``EvalCache`` report cache hit rates
  and per-cell timings, aggregated across ``sweep(jobs=N)`` workers.

Disabled by default and zero-overhead when disabled: hot loops select an
instrumented path only when a recorder is active.  Activate with
``REPRO_OBS=1`` in the environment or :func:`enable`; export with
:func:`export` / :func:`write_json`, render with :func:`summary`.

Typical use::

    from repro import obs
    obs.enable()
    result = wytiwyg_recompile(image, inputs)
    doc = obs.export(obs.recorder())
    print(obs.summary(doc), file=sys.stderr)
"""

from . import events
from .diff import (
    diff_reports,
    load_benchmarks,
    regress,
    render_diff,
    render_regress,
)
from .events import (
    EVENT_KINDS,
    LEDGER_SCHEMA_VERSION,
    EventLedger,
    disable_ledger,
    enable_ledger,
    event,
    fork_begin,
    ledger,
    read_events,
)
from .metrics import Histogram, MetricsRegistry
from .profile import Profile
from .provenance import (
    VariableProvenance,
    explain_variable,
    parse_var_name,
    render_provenance,
    select_variables,
)
from .recorder import (
    Recorder,
    count,
    disable,
    enable,
    enabled,
    gauge,
    observe,
    recorder,
    span,
    timed,
)
from .report import export, iter_spans, summary, write_json
from .spans import NULL_SPAN, Span

__all__ = [
    "EVENT_KINDS", "EventLedger", "Histogram", "LEDGER_SCHEMA_VERSION",
    "MetricsRegistry", "NULL_SPAN", "Profile", "Recorder", "Span",
    "VariableProvenance", "count", "diff_reports", "disable",
    "disable_ledger", "enable", "enable_ledger", "enabled", "event",
    "explain_variable", "export", "export_payload", "fork_begin",
    "gauge", "iter_spans", "ledger", "load_benchmarks",
    "merge_payload", "observe",
    "parse_var_name", "read_events", "recorder", "regress",
    "render_diff", "render_provenance", "render_regress",
    "select_variables", "span", "summary", "timed", "write_json",
]


def export_payload(top: int = 50) -> dict | None:
    """Serialize the active recorder for hand-off to another process
    (a ``sweep`` worker reporting back to its parent), or None when
    observability is disabled.  An in-memory ledger's events ride along
    (file-backed ledgers need no shipping — workers append to the
    shared file directly)."""
    rec = recorder()
    shipped = events.export_events()
    if rec is None:
        if shipped is None:
            return None
        return {"events": shipped}
    doc = export(rec, top)
    if shipped is not None:
        doc["events"] = shipped
    return doc


def merge_payload(payload: dict | None) -> None:
    """Fold a worker's :func:`export_payload` document into the active
    recorder: metrics merge, the worker's span trees are kept verbatim
    alongside local spans, shipped ledger events append to the active
    ledger.  A no-op when disabled or payload is None."""
    if payload is None:
        return
    events.merge_events(payload.get("events"))
    rec = recorder()
    if rec is None:
        return
    rec.registry.merge(payload.get("metrics", {}))
    rec.foreign_spans.extend(payload.get("spans", []))
