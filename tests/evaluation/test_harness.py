"""Evaluation harness plumbing on a miniature workload."""

import pytest

from repro.evaluation.harness import CellResult, geomean, measure_cell
from repro.workloads.base import Workload

TINY = Workload(
    name="tinybench",
    source=r'''
int poly(int x) { return x * x * 3 + x * 2 + 7; }
int main() {
    int total = 0;
    int i;
    for (i = 0; i < 40; i++) total += poly(i) & 0xFF;
    printf("%d\n", total);
    return 0;
}
''',
    ref_inputs=((),),
    description="harness self-test kernel",
)


@pytest.fixture(scope="module")
def cell(tmp_path_factory, monkeypatch_module=None):
    import os
    cache = tmp_path_factory.mktemp("cache")
    old = os.environ.get("REPRO_EVAL_CACHE")
    os.environ["REPRO_EVAL_CACHE"] = str(cache)
    try:
        yield measure_cell(TINY, "gcc12", "3")
    finally:
        if old is None:
            os.environ.pop("REPRO_EVAL_CACHE", None)
        else:
            os.environ["REPRO_EVAL_CACHE"] = old


def test_cell_measures_all_pipelines(cell):
    assert cell.native_cycles > 0
    assert cell.binrec_cycles and cell.binrec_match
    assert cell.wytiwyg_cycles and cell.wytiwyg_match
    assert not cell.wytiwyg_fallback
    assert cell.secondwrite_cycles and cell.secondwrite_match


def test_expected_ordering(cell):
    # Symbolized beats unsymbolized; both functional.
    assert cell.wytiwyg_cycles < cell.binrec_cycles


def test_accuracy_recorded(cell):
    assert sum(cell.accuracy_counts.values()) > 0
    assert cell.accuracy_recovered > 0


def test_ratios(cell):
    assert cell.wytiwyg_ratio == pytest.approx(
        cell.wytiwyg_cycles / cell.native_cycles)
    empty = CellResult("w", "c", "0")
    assert empty.wytiwyg_ratio is None


def test_cache_round_trip(cell, tmp_path):
    import os
    os.environ["REPRO_EVAL_CACHE"] = str(tmp_path)
    try:
        first = measure_cell(TINY, "gcc12", "3")
        second = measure_cell(TINY, "gcc12", "3")
        assert first.native_cycles == second.native_cycles
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
    finally:
        os.environ.pop("REPRO_EVAL_CACHE", None)


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([]) == 0.0
    assert geomean([5.0, None, 0]) == pytest.approx(5.0)
