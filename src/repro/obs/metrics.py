"""Metrics registry: counters, gauges, histograms, timers, profiles.

One :class:`MetricsRegistry` lives on the active recorder.  Counters and
gauges are plain dicts (hot instrumentation sites cache the dict and
update it directly); histograms keep summary statistics rather than raw
samples; timers are histograms over seconds.  Registries serialize to
plain-dict payloads and merge, which is how ``sweep(jobs=N)`` worker
processes report back to the parent.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager

from .profile import Profile

__all__ = ["Histogram", "MetricsRegistry"]


#: Sample-reservoir bound.  Past it the reservoir decimates (keep every
#: other sample) and halves its acceptance rate, deterministically —
#: percentiles become approximate but runs stay reproducible (no
#: randomized reservoir sampling).
_SAMPLE_CAP = 2048


class Histogram:
    """Streaming summary statistics (count/sum/min/max) plus a bounded,
    deterministically-decimated sample reservoir for percentiles."""

    __slots__ = ("count", "total", "min", "max", "samples", "_stride",
                 "_pending")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples: list[float] = []
        self._stride = 1
        self._pending = 0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._pending += 1
        if self._pending >= self._stride:
            self._pending = 0
            self.samples.append(value)
            if len(self.samples) >= _SAMPLE_CAP:
                self.samples = self.samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the retained samples (0 when the
        series is empty)."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(int(math.ceil(q * len(ordered))) - 1, 0)
        return ordered[min(rank, len(ordered) - 1)]

    def merge_dict(self, doc: dict) -> None:
        if not doc.get("count"):
            return
        self.count += doc["count"]
        self.total += doc["sum"]
        self.min = min(self.min, doc["min"])
        self.max = max(self.max, doc["max"])
        # Pre-percentile payloads (schema v1) carry no samples; the
        # merged reservoir then under-represents that worker, which
        # only degrades the estimate, never the exact stats above.
        self.samples.extend(doc.get("samples", ()))
        while len(self.samples) >= _SAMPLE_CAP:
            self.samples = self.samples[::2]
            self._stride *= 2

    def to_dict(self) -> dict:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
                    "samples": []}
        return {"count": self.count, "sum": self.total, "min": self.min,
                "max": self.max, "mean": self.mean,
                "p50": self.quantile(0.50), "p95": self.quantile(0.95),
                "p99": self.quantile(0.99),
                "samples": list(self.samples)}


class MetricsRegistry:
    """All metrics of one recorder, mergeable across processes."""

    __slots__ = ("counters", "gauges", "histograms", "timers", "profiles")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.timers: dict[str, Histogram] = {}
        self.profiles: dict[str, Profile] = {}

    # -- recording ----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def histogram(self, name: str) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        return hist

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).add(value)

    def timer(self, name: str) -> Histogram:
        hist = self.timers.get(name)
        if hist is None:
            hist = self.timers[name] = Histogram()
        return hist

    @contextmanager
    def time(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.timer(name).add(time.perf_counter() - start)

    def profile(self, name: str) -> Profile:
        prof = self.profiles.get(name)
        if prof is None:
            prof = self.profiles[name] = Profile()
        return prof

    # -- serialization / aggregation ----------------------------------------

    def to_dict(self, top: int = 10) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {name: h.to_dict() for name, h
                           in sorted(self.histograms.items())},
            "timers": {name: h.to_dict() for name, h
                       in sorted(self.timers.items())},
            "profiles": {name: p.to_dict(top) for name, p
                         in sorted(self.profiles.items())},
        }

    def merge(self, doc: dict) -> None:
        """Fold a serialized registry (:meth:`to_dict` output) into this
        one: counters/profiles sum, histograms/timers combine their
        summary statistics, gauges keep the incoming value."""
        for name, n in doc.get("counters", {}).items():
            self.count(name, n)
        self.gauges.update(doc.get("gauges", {}))
        for name, h in doc.get("histograms", {}).items():
            self.histogram(name).merge_dict(h)
        for name, h in doc.get("timers", {}).items():
            self.timer(name).merge_dict(h)
        for name, p in doc.get("profiles", {}).items():
            prof = self.profile(name)
            for key, n in p.get("top", []):
                prof.add(key, n)
            # Entries below the exported top-N are preserved in total
            # only; record the remainder under a sentinel so sums match.
            rest = p.get("total", 0) - sum(n for _, n in p.get("top", []))
            if rest > 0:
                prof.add("(other)", rest)
