"""Instruction builder: a positioned cursor for emitting IR."""

from __future__ import annotations

from .module import Block, Function
from .values import (
    Alloca,
    BinOp,
    Br,
    Call,
    CallExt,
    CallInd,
    CondBr,
    Const,
    FuncRef,
    ICmp,
    Instr,
    Intrinsic,
    Load,
    Phi,
    Ret,
    Result,
    Store,
    Switch,
    Unary,
    Unreachable,
    Value,
)


class Builder:
    """Emits instructions at the end of a current block."""

    def __init__(self, function: Function):
        self.function = function
        self.block: Block | None = None

    def position(self, block: Block) -> "Builder":
        self.block = block
        return self

    def new_block(self, name: str) -> Block:
        return self.function.add_block(name)

    def _emit(self, instr: Instr) -> Instr:
        if self.block is None:
            raise RuntimeError("builder has no current block")
        return self.block.append(instr)

    # -- arithmetic ---------------------------------------------------------

    def binop(self, op: str, a: Value, b: Value) -> Instr:
        return self._emit(BinOp(op, a, b))

    def add(self, a: Value, b: Value) -> Instr:
        return self.binop("add", a, b)

    def sub(self, a: Value, b: Value) -> Instr:
        return self.binop("sub", a, b)

    def mul(self, a: Value, b: Value) -> Instr:
        return self.binop("mul", a, b)

    def unary(self, op: str, src: Value) -> Instr:
        return self._emit(Unary(op, src))

    def icmp(self, pred: str, a: Value, b: Value) -> Instr:
        return self._emit(ICmp(pred, a, b))

    # -- memory -------------------------------------------------------------

    def load(self, addr: Value, size: int = 4) -> Instr:
        return self._emit(Load(addr, size))

    def store(self, addr: Value, value: Value, size: int = 4) -> Instr:
        return self._emit(Store(addr, value, size))

    def alloca(self, size: int, align: int = 4, name: str = "") -> Instr:
        return self._emit(Alloca(size, align, name))

    # -- calls --------------------------------------------------------------

    def call(self, callee: str | FuncRef, args: list[Value],
             nresults: int = 1) -> Instr:
        ref = callee if isinstance(callee, FuncRef) else FuncRef(callee)
        return self._emit(Call(ref, args, nresults))

    def call_indirect(self, target: Value, args: list[Value],
                      nresults: int = 1) -> Instr:
        return self._emit(CallInd(target, args, nresults))

    def call_external(self, name: str, args: list[Value],
                      sp: Value | None = None) -> Instr:
        return self._emit(CallExt(name, args, sp))

    def result(self, call: Instr, index: int) -> Instr:
        return self._emit(Result(call, index))

    def intrinsic(self, name: str, args: list[Value],
                  meta: dict | None = None) -> Instr:
        return self._emit(Intrinsic(name, args, meta))

    # -- control flow -------------------------------------------------------

    def phi(self, incomings: list[tuple[Block, Value]]) -> Phi:
        if self.block is None:
            raise RuntimeError("builder has no current block")
        phi = Phi(incomings)
        # Phis must be grouped at the top of the block.
        index = len(self.block.phis())
        self.block.insert(index, phi)
        return phi

    def br(self, target: Block) -> Instr:
        return self._emit(Br(target))

    def condbr(self, cond: Value, if_true: Block, if_false: Block) -> Instr:
        return self._emit(CondBr(cond, if_true, if_false))

    def switch(self, value: Value, cases: list[tuple[int, Block]],
               default: Block) -> Instr:
        return self._emit(Switch(value, cases, default))

    def ret(self, values: list[Value]) -> Instr:
        return self._emit(Ret(values))

    def unreachable(self, note: str = "") -> Instr:
        return self._emit(Unreachable(note))

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def const(value: int) -> Const:
        return Const(value)
