"""End-to-end observability of a full recompile, and the observer-effect
guard: enabling repro.obs must never change what the pipeline produces."""

import pytest

from repro import obs
from repro.core.driver import wytiwyg_recompile

STAGES = ("trace", "lift", "varargs", "regsave", "canonicalize",
          "bounds", "optimize", "recompile")
IR_STAGES = STAGES[1:]


@pytest.fixture(scope="module")
def report(kernel_image):
    obs.enable(reset=True)
    try:
        result = wytiwyg_recompile(kernel_image, [[]])
        doc = obs.export(obs.recorder())
    finally:
        obs.disable()
    assert not result.fallback
    return doc


def test_all_eight_stage_spans_present(report):
    spans = {s["name"]: s for s in obs.iter_spans(report)}
    assert "pipeline.wytiwyg" in spans
    for stage in STAGES:
        assert f"stage.{stage}" in spans, stage
        assert spans[f"stage.{stage}"]["seconds"] >= 0.0


def test_stage_spans_carry_ir_deltas(report):
    spans = {s["name"]: s for s in obs.iter_spans(report)}
    for stage in IR_STAGES:
        attrs = spans[f"stage.{stage}"]["attrs"]
        if stage not in ("canonicalize", "recompile"):
            assert attrs["verified"], stage
        assert attrs["ir_after"]["instrs"] > 0, stage
        assert attrs["ir_before"]["instrs"] >= 0, stage
    # Symbolization and optimization shrink the module.
    bounds = spans["stage.bounds"]["attrs"]
    assert bounds["ir_after"]["instrs"] < bounds["ir_before"]["instrs"]
    assert bounds["stack_variables"] > 0


def test_pipeline_span_reports_accuracy(report):
    (pipeline,) = [s for s in obs.iter_spans(report)
                   if s["name"] == "pipeline.wytiwyg"]
    attrs = pipeline["attrs"]
    assert attrs["fallback"] is False
    assert 0.0 < attrs["accuracy_precision"] <= 1.0
    assert 0.0 < attrs["accuracy_recall"] <= 1.0
    assert sum(attrs["accuracy_counts"].values()) > 0


def test_emulator_and_interpreter_metrics(report):
    counters = report["metrics"]["counters"]
    assert counters["emu.block_cache.hit"] > 0
    assert counters["emu.instructions_retired"] > 0
    assert counters["emu.mem.fast_path"] > 0
    hot = report["metrics"]["profiles"]["emu.hot_blocks"]
    assert hot["total"] > 0 and hot["unique"] > 0
    assert len(hot["top"]) <= 10 and hot["top"]
    # The refinement stages execute the lifted IR on every input.
    assert report["metrics"]["profiles"]["ir.func_calls"]["total"] > 0
    assert counters["ir.runs"] > 0


def test_optimizer_pass_deltas(report):
    timers = report["metrics"]["timers"]
    passes = [n for n in timers if n.startswith("opt.pass.")]
    assert passes and all(timers[n]["count"] > 0 for n in passes)
    counters = report["metrics"]["counters"]
    removed = [n for n in counters
               if n.startswith("opt.pass.") and
               n.endswith(".instrs_removed")]
    assert removed  # at least one pass actually deleted instructions


def test_summary_renders(report):
    text = obs.summary(report)
    for stage in STAGES:
        assert stage in text
    assert "block cache hit rate" in text
    assert "hot blocks" in text


def test_observability_does_not_change_output(kernel_image):
    """Observer-effect guard: recompiled binaries are byte-identical
    with observability off, on, and on with the event ledger."""
    obs.disable()
    obs.disable_ledger()
    baseline = wytiwyg_recompile(kernel_image, [[]]).recovered.to_json()
    repeat = wytiwyg_recompile(kernel_image, [[]]).recovered.to_json()
    assert baseline == repeat  # the pipeline itself is deterministic
    obs.enable(reset=True)
    try:
        observed = wytiwyg_recompile(kernel_image,
                                     [[]]).recovered.to_json()
    finally:
        obs.disable()
    assert observed == baseline
    # The ledger is the second observer: recording every frame-variable
    # construction step must not perturb the construction.
    obs.enable(reset=True)
    led = obs.enable_ledger()
    try:
        recorded = wytiwyg_recompile(kernel_image,
                                     [[]]).recovered.to_json()
    finally:
        obs.disable_ledger()
        obs.disable()
    assert recorded == baseline
    assert any(e["kind"] == "frame.var.seed" for e in led.events)
