"""Instruction semantics under emulation, via hand-assembled programs."""

import pytest

from repro.binary.image import STACK_TOP
from repro.emu import run_binary
from repro.errors import EmulationError
from repro.isa import (
    AH,
    AL,
    AsmFunction,
    AsmProgram,
    AX,
    DataItem,
    EAX,
    EBX,
    ECX,
    EDX,
    ESP,
    Imm,
    ImportRef,
    Label,
    Mem,
    assemble,
    ins,
    jcc,
    setcc,
)
from repro.isa.registers import CL


def run(items, data=None, imports=(), inputs=None, **kw):
    prog = AsmProgram(functions=[AsmFunction("_start", list(items))],
                      data=list(data or []), imports=list(imports))
    return run_binary(assemble(prog), inputs or [], **kw)


def exit_with(value_items):
    return list(value_items) + [ins("hlt")]


def test_mov_imm_and_exit_code():
    r = run(exit_with([ins("mov", EAX, Imm(42))]))
    assert r.exit_code == 42


def test_arith_chain():
    r = run(exit_with([
        ins("mov", EAX, Imm(10)),
        ins("add", EAX, Imm(5)),
        ins("sub", EAX, Imm(3)),
        ins("imul", EAX, Imm(4)),
    ]))
    assert r.exit_code == 48


def test_partial_register_write_preserves_upper():
    r = run(exit_with([
        ins("mov", EAX, Imm(0x11223344)),
        ins("mov", AL, Imm(0x99)),
        ins("shr", EAX, Imm(8)),   # 0x112233
    ]))
    assert r.exit_code == 0x112233


def test_high_byte_register():
    r = run(exit_with([
        ins("mov", EAX, Imm(0)),
        ins("mov", AH, Imm(0x7F)),
    ]))
    assert r.exit_code == 0x7F00


def test_push_pop_lifo():
    r = run(exit_with([
        ins("push", Imm(1)),
        ins("push", Imm(2)),
        ins("pop", EAX),
        ins("pop", EBX),
        ins("shl", EAX, Imm(4)),
        ins("or", EAX, EBX),
    ]))
    assert r.exit_code == 0x21


def test_memory_operand_read_write():
    r = run(exit_with([
        ins("sub", ESP, Imm(16)),
        ins("mov", Mem(ESP, disp=4), Imm(7)),
        ins("add", Mem(ESP, disp=4), Imm(3)),
        ins("mov", EAX, Mem(ESP, disp=4)),
    ]))
    assert r.exit_code == 10


def test_lea_computes_without_access():
    r = run(exit_with([
        ins("mov", EBX, Imm(0x100)),
        ins("mov", ECX, Imm(3)),
        ins("lea", EAX, Mem(EBX, ECX, 4, 8)),
    ]))
    assert r.exit_code == 0x100 + 12 + 8


def test_movsx_movzx():
    r = run(exit_with([
        ins("mov", EBX, Imm(0xFF)),
        ins("movsx", EAX, Mem(ESP, disp=-4, size=1)),  # reads 0
        ins("mov", Mem(ESP, disp=-4, size=1), Imm(0x80)),
        ins("movsx", EAX, Mem(ESP, disp=-4, size=1)),
        ins("and", EAX, Imm(0xFFFF)),
    ]))
    assert r.exit_code == 0xFF80


def test_cdq_idiv_signed():
    r = run(exit_with([
        ins("mov", EAX, Imm(-13)),
        ins("push", Imm(4)),
        ins("cdq"),
        ins("idiv", Mem(ESP, disp=0)),
        ins("add", ESP, Imm(4)),
        ins("imul", EAX, EDX),   # quotient * remainder = -3 * -1 = 3
    ]))
    assert r.exit_code == 3


def test_division_by_zero_raises():
    with pytest.raises(EmulationError):
        run(exit_with([
            ins("mov", EAX, Imm(1)),
            ins("mov", EBX, Imm(0)),
            ins("cdq"),
            ins("idiv", EBX),
        ]))


def test_shifts_with_cl():
    r = run(exit_with([
        ins("mov", EAX, Imm(1)),
        ins("mov", ECX, Imm(5)),
        ins("shl", EAX, CL),
    ]))
    assert r.exit_code == 32


def test_sar_sign_extends():
    r = run(exit_with([
        ins("mov", EAX, Imm(-8)),
        ins("sar", EAX, Imm(2)),
    ]))
    assert r.exit_code == (-2) & 0xFFFFFFFF


def test_inc_dec_preserve_carry():
    r = run(exit_with([
        ins("mov", EAX, Imm(0xFFFFFFFF)),
        ins("add", EAX, Imm(1)),      # sets CF, eax = 0
        ins("inc", EAX),              # preserves CF
        setcc("b", AL),               # CF still set
    ]))
    assert r.exit_code & 0xFF == 1


def test_conditional_branch_taken_and_not():
    r = run([
        ins("mov", EAX, Imm(5)),
        ins("cmp", EAX, Imm(10)),
        jcc("l", Label("less")),
        ins("mov", EAX, Imm(0)),
        ins("hlt"),
        "less",
        ins("mov", EAX, Imm(1)),
        ins("hlt"),
    ])
    assert r.exit_code == 1


def test_call_ret_and_leave():
    prog = AsmProgram(functions=[
        AsmFunction("_start", [
            ins("push", Imm(20)),
            ins("call", Label("double")),
            ins("add", ESP, Imm(4)),
            ins("hlt"),
        ]),
        AsmFunction("double", [
            ins("push", Imm(0)),  # fake saved ebp via plain frame
            ins("mov", EAX, Mem(ESP, disp=8)),
            ins("add", EAX, EAX),
            ins("add", ESP, Imm(4)),
            ins("ret"),
        ]),
    ])
    r = run_binary(assemble(prog), [])
    assert r.exit_code == 40


def test_indirect_jump_through_register():
    r = run([
        ins("mov", EBX, Label("target")),
        ins("jmp", EBX),
        ins("mov", EAX, Imm(0)),
        ins("hlt"),
        "target",
        ins("mov", EAX, Imm(9)),
        ins("hlt"),
    ])
    assert r.exit_code == 9


def test_import_call_reads_stack_args():
    r = run([
        ins("push", Imm(33)),
        ins("push", Label("fmt")),
        ins("call", ImportRef("printf")),
        ins("add", ESP, Imm(8)),
        ins("mov", EAX, Imm(0)),
        ins("hlt"),
    ], data=[DataItem("fmt", b"v=%d\n\x00")], imports=["printf"])
    assert r.stdout == b"v=33\n"


def test_initial_stack_pointer():
    # The loader pushes the exit sentinel, so esp starts one word below
    # the stack top.
    r = run(exit_with([ins("mov", EAX, ESP)]))
    assert r.exit_code == STACK_TOP - 4


def test_return_from_entry_halts_with_eax():
    r = run([ins("mov", EAX, Imm(12)), ins("ret")])
    assert r.exit_code == 12


def test_instruction_budget_enforced():
    with pytest.raises(EmulationError):
        run(["loop", ins("jmp", Label("loop"))], max_instructions=1000)


def test_cycle_accounting_positive():
    r = run(exit_with([ins("mov", EAX, Imm(0)), ins("nop")]))
    assert r.cycles >= r.instructions > 0
