"""MiniC type system."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CompileError


class CType:
    """Base class of MiniC types."""

    @property
    def size(self) -> int:
        raise NotImplementedError

    @property
    def align(self) -> int:
        return min(self.size, 4) or 1

    @property
    def is_scalar(self) -> bool:
        return False


@dataclass(frozen=True)
class IntType(CType):
    """An integer type of ``width`` bytes; chars are signed by default."""

    width: int = 4
    signed: bool = True

    @property
    def size(self) -> int:
        return self.width

    @property
    def is_scalar(self) -> bool:
        return True

    def __repr__(self) -> str:
        prefix = "" if self.signed else "unsigned "
        return prefix + {1: "char", 2: "short", 4: "int"}[self.width]


@dataclass(frozen=True)
class VoidType(CType):
    @property
    def size(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "void"


@dataclass(frozen=True)
class PtrType(CType):
    pointee: CType

    @property
    def size(self) -> int:
        return 4

    @property
    def is_scalar(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"{self.pointee!r}*"


@dataclass(frozen=True)
class ArrayType(CType):
    element: CType
    count: int

    @property
    def size(self) -> int:
        return self.element.size * self.count

    @property
    def align(self) -> int:
        return self.element.align

    def __repr__(self) -> str:
        return f"{self.element!r}[{self.count}]"


@dataclass
class StructField:
    name: str
    ctype: CType
    offset: int


@dataclass
class StructType(CType):
    name: str
    fields: list[StructField] = field(default_factory=list)
    complete: bool = False
    _size: int = 0

    @property
    def size(self) -> int:
        if not self.complete:
            raise CompileError(f"use of incomplete struct {self.name}")
        return self._size

    @property
    def align(self) -> int:
        return max((f.ctype.align for f in self.fields), default=1)

    def lay_out(self, fields: list[tuple[str, CType]]) -> None:
        offset = 0
        for name, ctype in fields:
            align = ctype.align
            offset = (offset + align - 1) & ~(align - 1)
            self.fields.append(StructField(name, ctype, offset))
            offset += ctype.size
        align = self.align
        self._size = (offset + align - 1) & ~(align - 1)
        self.complete = True

    def field_named(self, name: str) -> StructField:
        for f in self.fields:
            if f.name == name:
                return f
        raise CompileError(f"struct {self.name} has no field {name!r}")

    def __repr__(self) -> str:
        return f"struct {self.name}"

    def __hash__(self) -> int:
        return hash(("struct", self.name))


@dataclass(frozen=True)
class FuncType(CType):
    ret: CType
    params: tuple[CType, ...]
    vararg: bool = False

    @property
    def size(self) -> int:
        return 4  # decays to a pointer

    @property
    def is_scalar(self) -> bool:
        return True

    def __repr__(self) -> str:
        params = ", ".join(repr(p) for p in self.params)
        if self.vararg:
            params += ", ..."
        return f"{self.ret!r}({params})"


INT = IntType(4)
UINT = IntType(4, signed=False)
CHAR = IntType(1)
UCHAR = IntType(1, signed=False)
SHORT = IntType(2)
USHORT = IntType(2, signed=False)
VOID = VoidType()
CHAR_PTR = PtrType(CHAR)
VOID_PTR = PtrType(VOID)


def decay(ctype: CType) -> CType:
    """Array-to-pointer and function-to-pointer decay."""
    if isinstance(ctype, ArrayType):
        return PtrType(ctype.element)
    if isinstance(ctype, FuncType):
        return PtrType(ctype)
    return ctype


def is_pointerish(ctype: CType) -> bool:
    return isinstance(decay(ctype), PtrType)


def pointee_size(ctype: CType) -> int:
    """Element size used for pointer arithmetic scaling."""
    decayed = decay(ctype)
    if not isinstance(decayed, PtrType):
        raise CompileError(f"not a pointer: {ctype!r}")
    target = decayed.pointee
    if isinstance(target, VoidType):
        return 1
    return target.size
