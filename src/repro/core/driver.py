"""The WYTIWYG refinement-lifting driver (paper Figure 4).

Orchestrates the full pipeline:

1. trace the input binary on the user-provided inputs (S2E role);
2. lift the merged traces to IR (BinRec role);
3. **refinement: variadic call recovery** (§5.2) — run, inspect format
   strings, make variadic external calls explicit;
4. **refinement: register save/argument classification** (§4.1) — run
   with register symbols, shrink signatures, decouple saved registers
   from the emulated stack;
5. canonicalize (SSA for vcpu registers, constant folding) and fold all
   direct stack references into ``sp0 + offset`` form;
6. **refinement: object bounds recovery** (§4.2) — instrument with the
   ``wyt.*`` probes, execute all inputs against the tracing runtime,
   build frame layouts and signatures, replace base pointers with native
   allocas, and remove the emulated stack;
7. optimize the symbolized module with the standard pipeline;
8. recompile to a new binary.

Every dynamic stage executes the *lifted IR itself* on the same inputs,
so each refinement consumes exactly the semantics the previous one
produced — the "what you trace is what you get" guarantee for traced
inputs.

All dynamic re-execution goes through one
:class:`~repro.replay.ReplayEngine` per pipeline run: traced inputs are
deduplicated once, validation sweeps are skipped when a stage left the
module's content fingerprint unchanged, and with ``jobs > 1`` the
validation and instrumented-bounds sweeps fan out over a process pool
(results merge deterministically, so the recompiled binary is
byte-identical across ``jobs`` settings).

Observability: with :mod:`repro.obs` enabled every stage above runs
inside a named span (``stage.trace`` ... ``stage.recompile``) recording
wall time, the module's function/block/instruction counts before and
after, and verifier status; the enclosing ``pipeline.wytiwyg`` span
additionally carries the layout-accuracy precision/recall whenever the
input image ships ground truth, so a single recompile run reports the
paper's Figure-7 quality numbers without the evaluation harness.  The
replay layer contributes ``replay.runs`` / ``replay.deduped`` /
``replay.validations_skipped`` / ``validate.interpreter_errors``
counters and per-sweep timers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from .. import obs
from ..binary.image import BinaryImage
from ..emu.tracer import TraceSet, trace_binary
from ..errors import CheckError, StaticCheckError, SymbolizeError
from ..ir.module import Module
from ..ir.verifier import verify_module
from ..lifting.translator import lift_traces
from ..opt.dce import eliminate_dead_code
from ..opt.manager import canonicalize_module
from ..opt.pipeline import OptOptions, optimize_module
from ..opt.deadargelim import shrink_signatures
from ..recompile.link import recompile_ir
from ..recompile.lower import LowerOptions
from ..replay import ReplayEngine
from ..sanalysis import (
    CheckReport,
    analyze_function,
    corroborate_layouts,
    interproc_corroborate,
    interproc_enabled,
    sanitize_function,
)
from .accuracy import AccuracyReport, evaluate_accuracy
from .instrument import instrument_module, strip_probes
from .layout import FrameLayout, apply_widenings, build_layouts
from .regsave import apply_register_classification, classify_registers
from .replace import drop_sp_threading, replace_base_pointers
from .signatures import build_signatures
from .sp0fold import fold_module_stack_refs, is_lifted_function
from .varargs import recover_vararg_calls


@dataclass
class WytiwygResult:
    """Everything the pipeline produced."""

    module: Module
    recovered: BinaryImage
    layouts: dict[str, FrameLayout] = field(default_factory=dict)
    accuracy: AccuracyReport | None = None
    #: True if the refined module fell back to the unsymbolized pipeline.
    fallback: bool = False
    notes: list[str] = field(default_factory=list)
    #: Static corroboration + sanitizer findings (None after fallback).
    check_report: CheckReport | None = None
    #: The merged trace set the pipeline consumed (re-traced or passed
    #: in); the incremental service layer persists and summarizes it.
    traces: TraceSet | None = None


def _resolve_check(check: bool | str | None) -> bool | str:
    """Gate mode: False (off), True (errors abort), or ``"strict"``
    (warnings abort too).  ``None`` defers to ``$REPRO_CHECK``."""
    if check is None:
        check = os.environ.get("REPRO_CHECK", "")
    if isinstance(check, str):
        low = check.strip().lower()
        if low == "strict":
            return "strict"
        return low not in ("", "0", "false", "off", "no")
    return bool(check)


def _resolve_static_widen(static_widen: bool | None) -> bool:
    if static_widen is None:
        return os.environ.get("REPRO_STATIC_WIDEN", "") \
            not in ("", "0", "false", "off", "no")
    return bool(static_widen)


def _count_findings(findings) -> dict[str, int]:
    counts = {"error": 0, "warning": 0, "info": 0}
    for finding in findings:
        counts[finding.severity] += 1
    for severity, n in counts.items():
        if n:
            obs.count(f"sanalysis.findings.{severity}", n)
    return counts


def module_stats(module: Module) -> dict[str, int]:
    """IR size snapshot attached to stage spans (before/after deltas)."""
    return {
        "functions": len(module.functions),
        "blocks": sum(len(f.blocks) for f in module.functions.values()),
        "instrs": sum(len(b.instrs)
                      for f in module.functions.values()
                      for b in f.blocks),
    }


def _canonicalize(module: Module, opt_jobs: int | None = None) -> None:
    """SSA-ify vcpu registers and fold address arithmetic (the paper's
    "turn virtual CPU registers into SSA-values before instrumentation"
    plus displacement folding).  Runs under the incremental pass
    manager, so functions the preceding refinement stage left untouched
    cost one version comparison instead of a full schedule."""
    canonicalize_module(module, jobs=opt_jobs)


def wytiwyg_lift(traces: TraceSet,
                 validate: bool = True,
                 hybrid: bool = False,
                 jobs: int = 1,
                 static_widen: bool | None = None,
                 opt_jobs: int | None = None,
                 replay_pool=None,
                 ) -> tuple[Module, dict[str, FrameLayout],
                            list[str], CheckReport]:
    """Run the refinement pipeline on merged traces; returns the
    symbolized module, the recovered layouts, pipeline notes, and the
    static check report (corroboration + sanitizer findings).

    ``static_widen`` (default: ``$REPRO_STATIC_WIDEN``) applies the
    corroboration pass's widening suggestions to the recovered layouts
    *before* symbolization, so statically reachable but untraced frame
    bytes land inside a recovered variable instead of outside every
    alloca.

    ``hybrid`` enables the paper's §7.2 future-work direction: static
    disassembly extends coverage along untraced branch directions, and
    the register classification is widened with the ABI-heuristic static
    analysis so statically-added paths see sensible signatures.  Traced
    inputs keep their functional guarantee; nearby untraced paths become
    best-effort instead of trapping.

    ``jobs > 1`` fans the validation sweeps and the instrumented bounds
    runs out over a process pool; ``opt_jobs`` does the same for the
    canonicalization stage's per-function visits (default:
    ``$REPRO_OPT_JOBS``).  The symbolized module is byte-identical to a
    serial run either way.  ``replay_pool`` lends the engine a caller-
    owned :class:`~repro.parallel.ForkPool` (the long-lived serve
    daemon shares one across requests); the engine then does not shut
    it down on close.
    """
    if not traces.inputs:
        raise CheckError(
            "no traced inputs: the dynamic pipeline needs at least one "
            "traced run to recover layouts (pass --input, or an empty "
            "input list '' for an input-less program)")
    engine = ReplayEngine(traces, jobs=jobs, pool=replay_pool)
    try:
        return _lift_with_engine(engine, traces, validate, hybrid,
                                 static_widen, opt_jobs)
    finally:
        engine.close()


def _lift_with_engine(engine: ReplayEngine, traces: TraceSet,
                      validate: bool, hybrid: bool,
                      static_widen: bool | None,
                      opt_jobs: int | None,
                      ) -> tuple[Module, dict[str, FrameLayout],
                                 list[str], CheckReport]:
    static_widen = _resolve_static_widen(static_widen)
    report = CheckReport()
    notes: list[str] = []
    if engine.deduped:
        notes.append(
            f"replay: {len(engine.unique)} distinct inputs "
            f"({engine.deduped} duplicates fan in)")
    observing = obs.enabled()
    with obs.span("stage.lift", hybrid=hybrid) as sp:
        module = lift_traces(traces, "wytiwyg", static_extend=hybrid)
        verify_module(module)
        if observing:
            sp.set(ir_before={"functions": 0, "blocks": 0, "instrs": 0},
                   ir_after=module_stats(module), verified=True,
                   transfers=len(traces.transfers),
                   coverage=len(traces.executed),
                   inputs=len(traces.inputs))
    # The lifted module reproduces the traces by construction; its
    # fingerprint anchors the validation-skip chain.
    engine.mark_valid(module)
    if hybrid:
        notes.append("hybrid: static coverage extension enabled")

    # Refinement: variadic external calls (§5.2).
    with obs.span("stage.varargs") as sp:
        before = module_stats(module) if observing else None
        nsites = recover_vararg_calls(module,
                                      engine.replay_inputs("varargs"))
        if nsites:
            notes.append(f"varargs: recovered {nsites} call sites")
        verify_module(module)
        validated = engine.validate(module, "varargs refinement") \
            if validate else "off"
        if before is not None:
            sp.set(ir_before=before, ir_after=module_stats(module),
                   verified=True, call_sites=nsites,
                   validated=validated)

    # Refinement: register save/argument classification (§4.1).
    with obs.span("stage.regsave") as sp:
        before = module_stats(module) if observing else None
        classification = classify_registers(
            module, engine.replay_inputs("regsave"),
            static_augment=hybrid)
        apply_register_classification(module, classification)
        verify_module(module)
        validated = engine.validate(module, "register refinement") \
            if validate else "off"
        if before is not None:
            sp.set(ir_before=before, ir_after=module_stats(module),
                   verified=True,
                   classified=len(classification.args),
                   indirect_targets=len(
                       classification.indirect_targets),
                   validated=validated)
    notes.append(
        f"regsave: {len(classification.args)} functions classified, "
        f"{len(classification.indirect_targets)} indirect targets")

    # Canonicalize and identify direct stack references.
    with obs.span("stage.canonicalize") as sp:
        before = module_stats(module) if observing else None
        _canonicalize(module, opt_jobs)
        refs = fold_module_stack_refs(module)
        if before is not None:
            sp.set(ir_before=before, ir_after=module_stats(module),
                   stack_refs=sum(len(r) for r in refs.values()))
    notes.append(
        "sp0fold: "
        f"{sum(len(r) for r in refs.values())} direct stack references")

    # Refinement: object bounds recovery (§4.2).
    with obs.span("stage.bounds") as sp:
        before = module_stats(module) if observing else None
        mi = instrument_module(module)
        runtime = engine.run_instrumented(module)
        strip_probes(module)
        verify_module(module)

        layouts = build_layouts(runtime, mi)
        _static_corroborate(module, layouts, report, notes,
                            static_widen)
        plan = build_signatures(runtime, mi, module)
        replace_base_pointers(module, mi, layouts, plan, runtime)
        for func in module.functions.values():
            eliminate_dead_code(func)
        drop_sp_threading(module)
        for func in module.functions.values():
            eliminate_dead_code(func)
        shrink_signatures(module)
        verify_module(module)
        validated = engine.validate(module, "stack symbolization") \
            if validate else "off"
        nvars = sum(len(lo.variables) for lo in layouts.values())
        if before is not None:
            sp.set(ir_before=before, ir_after=module_stats(module),
                   verified=True, stack_variables=nvars,
                   stack_args=sum(plan.stack_args.values()),
                   validated=validated)
    notes.append(f"symbolize: {nvars} stack variables, "
                 f"{sum(plan.stack_args.values())} stack args")

    # IR sanitizer lints over the symbolized module.
    with obs.span("stage.sanitize") as sp:
        lints = []
        for func in module.functions.values():
            with obs.span("sanitize.function",
                          function=func.name) as fsp:
                found = sanitize_function(func, module)
                lints.extend(found)
                if observing:
                    fsp.set(findings=len(found))
                if obs.ledger() is not None:
                    for finding in found:
                        obs.event("sanitize.finding",
                                  severity=finding.severity,
                                  finding=finding.kind,
                                  func=finding.func,
                                  offset=finding.offset,
                                  width=finding.width,
                                  message=finding.message)
        report.extend(lints)
        counts = _count_findings(lints)
        if observing:
            sp.set(findings=len(lints), **counts)
    if report.findings:
        counts = report.counts()
        notes.append(
            f"check: {counts['error']} errors, "
            f"{counts['warning']} warnings, {counts['info']} infos")

    notes.extend(engine.notes)
    module.metadata["pipeline"] = "wytiwyg"
    return module, layouts, notes, report


def _static_corroborate(module: Module,
                        layouts: dict[str, FrameLayout],
                        report: CheckReport,
                        notes: list[str],
                        static_widen: bool) -> None:
    """Static frame-access recovery + corroboration against the dynamic
    layouts, run on the pre-symbolization IR (sp still threaded, so the
    abstract interpreter can anchor every access at sp0).  Mutates
    ``layouts`` in place when widening is on."""
    observing = obs.enabled()
    with obs.span("stage.sanalysis", widen=static_widen) as sp:
        accesses = {}
        for func in module.functions.values():
            if not is_lifted_function(func):
                continue
            with obs.span("sanalysis.function",
                          function=func.name) as fsp:
                access_set = analyze_function(func)
                accesses[func.name] = access_set
                if observing:
                    fsp.set(accesses=len(access_set.accesses),
                            known_offsets=len(access_set.known_offsets))
        findings, suggestions = corroborate_layouts(accesses, layouts)
        interproc = interproc_enabled()
        if interproc:
            with obs.span("sanalysis.interproc"):
                ifindings, isuggestions = interproc_corroborate(
                    module, layouts, accesses)
            findings = findings + ifindings
            suggestions = suggestions + isuggestions
        if obs.ledger() is not None:
            for finding in findings:
                obs.event("corroborate.finding",
                          severity=finding.severity,
                          finding=finding.kind, func=finding.func,
                          offset=finding.offset, width=finding.width,
                          message=finding.message,
                          provenance=finding.provenance)
        if static_widen and suggestions:
            rows = apply_widenings(layouts, suggestions)
            report.widenings.extend(rows)
            applied = sum(1 for row in rows if row["applied"])
            if applied:
                notes.append(f"sanalysis: widened {applied} frame "
                             f"region(s) from static evidence")
                # Re-diff against the repaired layouts so the report
                # reflects what symbolization will actually use;
                # resolved gaps drop out, anything left is real.
                findings, _ = corroborate_layouts(accesses, layouts)
                if interproc:
                    ifindings, _ = interproc_corroborate(
                        module, layouts, accesses)
                    findings = findings + ifindings
        report.extend(findings)
        counts = _count_findings(findings)
        if observing:
            sp.set(functions=len(accesses), findings=len(findings),
                   suggestions=len(suggestions), **counts)


def wytiwyg_recompile(image: BinaryImage,
                      inputs: list[list[int | bytes]],
                      optimize: bool = True,
                      collect_accuracy: bool = True,
                      allow_fallback: bool = True,
                      hybrid: bool = False,
                      traces: TraceSet | None = None,
                      jobs: int = 1,
                      check: bool | str | None = None,
                      static_widen: bool | None = None,
                      opt_jobs: int | None = None,
                      replay_pool=None) -> WytiwygResult:
    """End-to-end WYTIWYG: trace, refine, symbolize, optimize,
    recompile.  Falls back to the unsymbolized (BinRec) pipeline if
    symbolization fails functional validation.

    Pass ``traces`` (a TraceSet of ``image`` over ``inputs``) to reuse
    an existing or cached trace instead of re-executing the binary.
    ``jobs`` fans validation and bounds replay out over that many
    worker processes; ``opt_jobs`` (default ``$REPRO_OPT_JOBS``) fans
    the optimizer's per-function visits the same way.  The result is
    byte-identical to ``jobs=1`` / ``opt_jobs=1``.

    ``check`` (default: ``$REPRO_CHECK``) arms the static gate: with a
    truthy value, ``error``-severity findings abort the pipeline with
    :class:`~repro.errors.StaticCheckError` *before* the optimizer
    runs, and warnings are annotated into the result notes; with
    ``"strict"``, warnings abort too.  ``static_widen`` is forwarded to
    :func:`wytiwyg_lift`.
    """
    observing = obs.enabled()
    check = _resolve_check(check)
    obs.event("run.start", pipeline="wytiwyg",
              image=image.metadata.get("name"), inputs=len(inputs),
              hybrid=hybrid, optimize=optimize)
    with obs.span("pipeline.wytiwyg", hybrid=hybrid) as pipeline_span:
        with obs.span("stage.trace", cached=traces is not None) as sp:
            if traces is None:
                traces = trace_binary(image, inputs)
            if observing:
                sp.set(inputs=len(traces.inputs),
                       transfers=len(traces.transfers),
                       coverage=len(traces.executed))
        try:
            module, layouts, notes, report = wytiwyg_lift(
                traces, hybrid=hybrid, jobs=jobs,
                static_widen=static_widen, opt_jobs=opt_jobs,
                replay_pool=replay_pool)
            fallback = False
        except SymbolizeError as exc:
            if not allow_fallback:
                raise
            from ..baselines.binrec import binrec_lift
            module = binrec_lift(traces, optimize=False)
            layouts = {}
            notes = [f"fallback to unsymbolized pipeline: {exc}"]
            report = None
            fallback = True

        if check and report is not None:
            gating = list(report.errors)
            if check == "strict":
                gating.extend(report.warnings)
            if observing:
                pipeline_span.set(check="strict" if check == "strict"
                                  else "on",
                                  check_gating=len(gating))
            if gating:
                raise StaticCheckError(
                    f"static check gate: {len(gating)} finding(s) "
                    f"block optimization "
                    f"({', '.join(sorted({g.kind for g in gating}))})",
                    report)
            for finding in report.warnings:
                notes.append(f"check[warn]: {finding.render()}")

        with obs.span("stage.optimize", enabled=optimize) as sp:
            before = module_stats(module) if observing else None
            if optimize:
                optimize_module(module, OptOptions.o3(), jobs=opt_jobs)
                verify_module(module)
            if before is not None:
                sp.set(ir_before=before, ir_after=module_stats(module),
                       verified=optimize)

        with obs.span("stage.recompile") as sp:
            recovered = recompile_ir(
                module, LowerOptions(frame_pointer=False),
                metadata={**image.metadata,
                          "pipeline": module.metadata.get(
                              "pipeline", "wytiwyg")})
            if observing:
                sp.set(ir_before=module_stats(module),
                       ir_after=module_stats(module),
                       text_bytes=len(recovered.text.data))

        accuracy = None
        if collect_accuracy and not fallback and image.ground_truth:
            accuracy = evaluate_accuracy(image, layouts)
        if observing:
            pipeline_span.set(fallback=fallback, notes=list(notes))
            if accuracy is not None:
                pipeline_span.set(
                    accuracy_precision=accuracy.precision,
                    accuracy_recall=accuracy.recall,
                    accuracy_counts=dict(accuracy.counts))
    obs.event("run.finish", pipeline="wytiwyg", fallback=fallback,
              stack_variables=sum(len(lo.variables)
                                  for lo in layouts.values()),
              notes=list(notes))
    return WytiwygResult(module, recovered, layouts, accuracy,
                         fallback, notes, check_report=report,
                         traces=traces)
