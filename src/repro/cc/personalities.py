"""Compiler personalities: toolchain-flavoured pipeline configurations.

The paper evaluates input binaries produced by GCC 12.2 (-O0/-O3),
Clang 16 (-O3) and the legacy GCC 4.4 (-O3).  Our stand-ins differ the
way those toolchains differ in ways that matter to the experiments:

* **gcc44** — legacy code generation: always keeps a frame pointer, has a
  small register pool (more spills, more stack traffic), inlines little
  and runs a weaker optimization pipeline.  Recompiling its output should
  yield the paper's ~1.2x legacy speedup.
* **gcc12** — modern: frame-pointer omission at -O2+, full register pool,
  aggressive inlining, GVN, jump tables.
* **clang16** — modern with slightly different heuristics (even larger
  inline budget, keeps jump tables at smaller densities).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CompileError
from ..opt.pipeline import OptOptions
from ..recompile.lower import LowerOptions


@dataclass(frozen=True)
class Personality:
    """A (compiler, optimization level) configuration.

    ``opt`` doubles as part of the pass manager's cross-stage memo key
    (:mod:`repro.opt.manager`), which is why it — like this class — must
    stay a frozen (hashable) dataclass: two personalities with equal
    ``OptOptions`` intentionally share memoized fixpoints.
    """

    compiler: str
    opt_level: str
    opt: OptOptions
    lower: LowerOptions

    @property
    def label(self) -> str:
        return f"{self.compiler} -{self.opt_level}"


_MODERN_POOL = ("ecx", "ebx", "esi", "edi")
_LEGACY_POOL = ("ecx", "ebx")


def personality(compiler: str, opt_level: str) -> Personality:
    """Look up a personality by toolchain name and -O level."""
    key = (compiler.lower(), opt_level.upper().lstrip("-O") or "0")
    builders = {
        ("gcc44", "0"): lambda: Personality(
            "gcc44", "O0", OptOptions.o0(),
            LowerOptions(frame_pointer=True, pool=_LEGACY_POOL,
                         jump_tables=False, fold_chains=False,
                         peephole=False)),
        ("gcc44", "3"): lambda: Personality(
            # Legacy pipeline: no GVN, no redundant-load or dead-store
            # removal, tiny inline budget, one pass -- plus a two-register
            # allocation pool and mandatory frame pointer.  Recompiling
            # its output with a modern pipeline should recover real
            # performance (the paper's 1.22x legacy speedup).
            "gcc44", "O3",
            OptOptions(level=1, inline=True, inline_threshold=12,
                       gvn=False, load_elim=False, dse=False, rounds=1),
            LowerOptions(frame_pointer=True, pool=_LEGACY_POOL,
                         jump_tables=True, fold_chains=False,
                         peephole=False)),
        ("gcc12", "0"): lambda: Personality(
            "gcc12", "O0", OptOptions.o0(),
            LowerOptions(frame_pointer=True, pool=_MODERN_POOL,
                         jump_tables=False)),
        ("gcc12", "3"): lambda: Personality(
            "gcc12", "O3", OptOptions.o3(),
            LowerOptions(frame_pointer=False, pool=_MODERN_POOL,
                         jump_tables=True)),
        ("clang16", "0"): lambda: Personality(
            "clang16", "O0", OptOptions.o0(),
            LowerOptions(frame_pointer=True, pool=_MODERN_POOL,
                         jump_tables=False)),
        ("clang16", "3"): lambda: Personality(
            "clang16", "O3",
            OptOptions(level=3, inline=True, inline_threshold=100,
                       gvn=True, load_elim=True, dse=True, rounds=3),
            LowerOptions(frame_pointer=False, pool=_MODERN_POOL,
                         jump_tables=True)),
    }
    try:
        return builders[key]()
    except KeyError:
        raise CompileError(
            f"unknown personality {compiler} -O{opt_level}") from None


#: The input-binary configurations evaluated by the paper (Table 1).
PAPER_CONFIGS = (
    ("gcc12", "3"),
    ("gcc12", "0"),
    ("clang16", "3"),
    ("gcc44", "3"),
)
