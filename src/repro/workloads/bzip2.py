"""bzip2 stand-in: block compression (RLE + move-to-front + entropy
estimate) over byte buffers — heavy ``char`` array traffic on the stack,
sub-word loads/stores, and data-dependent loops."""

from __future__ import annotations

from .base import Workload, deterministic_bytes

SOURCE = r"""
char input_block[4096];
char rle_block[8192];
char mtf_block[8192];
int freq[256];

int rle_encode(char *src, int n, char *dst) {
    int out = 0;
    int i = 0;
    while (i < n) {
        char value = src[i];
        int run = 1;
        while (i + run < n && src[i + run] == value && run < 120) {
            run = run + 1;
        }
        if (run >= 4) {
            dst[out] = value; dst[out + 1] = value;
            dst[out + 2] = value; dst[out + 3] = value;
            dst[out + 4] = (char)(run - 4);
            out = out + 5;
        } else {
            int k;
            for (k = 0; k < run; k++) { dst[out] = value; out = out + 1; }
        }
        i = i + run;
    }
    return out;
}

int mtf_encode(char *src, int n, char *dst) {
    char order[256];
    int i;
    for (i = 0; i < 256; i++) order[i] = (char)i;
    int changed = 0;
    for (i = 0; i < n; i++) {
        int value = src[i] & 255;
        int pos = 0;
        while ((order[pos] & 255) != value) pos = pos + 1;
        dst[i] = (char)pos;
        if (pos) changed = changed + 1;
        while (pos > 0) {
            order[pos] = order[pos - 1];
            pos = pos - 1;
        }
        order[0] = (char)value;
    }
    return changed;
}

int entropy_estimate(char *data, int n) {
    int i;
    for (i = 0; i < 256; i++) freq[i] = 0;
    for (i = 0; i < n; i++) freq[data[i] & 255] = freq[data[i] & 255] + 1;
    int bits = 0;
    for (i = 0; i < 256; i++) {
        int f = freq[i];
        int width = 1;
        int level = 1;
        while (level * 2 <= 256 && f * level < n) {
            width = width + 1;
            level = level * 2;
        }
        bits = bits + f * width;
    }
    return bits;
}

int checksum(char *data, int n) {
    int h = 5381;
    int i;
    for (i = 0; i < n; i++) h = h * 33 + (data[i] & 255);
    return h;
}

int main() {
    int total_in = 0, total_rle = 0, total_bits = 0, blocks = 0;
    int hash = 0;
    while (1) {
        int n = read_buf(input_block, 4096);
        if (n <= 0) break;
        int rle_n = rle_encode(input_block, n, rle_block);
        int moved = mtf_encode(rle_block, rle_n, mtf_block);
        int bits = entropy_estimate(mtf_block, rle_n);
        hash = hash ^ checksum(mtf_block, rle_n);
        total_in = total_in + n;
        total_rle = total_rle + rle_n;
        total_bits = total_bits + bits;
        blocks = blocks + 1;
        printf("block %d: %d -> %d bytes, %d bits, moved %d\n",
               blocks, n, rle_n, bits, moved);
    }
    printf("total %d -> %d (%d bits) hash %x\n",
           total_in, total_rle, total_bits, hash);
    return blocks;
}
"""


def _block(seed: int, size: int) -> bytes:
    # A 6-bit alphabet keeps the move-to-front inner loops short enough
    # for the emulator while exercising the same code paths.
    raw = bytearray(b & 0x3F for b in deterministic_bytes(size, seed))
    # Inject compressible runs so RLE has work to do.
    for i in range(0, size - 16, 37):
        raw[i:i + 9] = bytes([raw[i]]) * 9
    return bytes(raw)


WORKLOAD = Workload(
    name="bzip2",
    source=SOURCE,
    ref_inputs=(
        (_block(7, 100), _block(21, 80)),
    ),
    description="block compression: RLE + move-to-front + entropy model",
)
