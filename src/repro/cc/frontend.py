"""MiniC frontend: lowers the AST to repro IR.

The output is straightforward, unoptimized IR in the classic frontend
style: one alloca per local, parameters copied into allocas, loads and
stores everywhere.  The personality pipelines (:mod:`repro.cc.
personalities`) then shape it into gcc-4.4-like, gcc-12-like or
clang-16-like code before lowering.
"""

from __future__ import annotations

from ..errors import CompileError
from ..ir import (
    Builder,
    Const,
    FuncRef,
    Function,
    GlobalRef,
    GlobalVar,
    Module,
    Value,
)
from . import ast_nodes as ast
from .ctypes import (
    ArrayType,
    CHAR,
    CType,
    FuncType,
    INT,
    IntType,
    PtrType,
    StructType,
    UINT,
    VOID,
    VoidType,
    decay,
    pointee_size,
)

#: Prototypes of the external C library (matches repro.emu.libc).
LIBC_PROTOS: dict[str, FuncType] = {
    "printf": FuncType(INT, (PtrType(CHAR),), vararg=True),
    "sprintf": FuncType(INT, (PtrType(CHAR), PtrType(CHAR)), vararg=True),
    "puts": FuncType(INT, (PtrType(CHAR),)),
    "putchar": FuncType(INT, (INT,)),
    "memcpy": FuncType(PtrType(VOID), (PtrType(VOID), PtrType(VOID), UINT)),
    "memmove": FuncType(PtrType(VOID), (PtrType(VOID), PtrType(VOID),
                                        UINT)),
    "memset": FuncType(PtrType(VOID), (PtrType(VOID), INT, UINT)),
    "memcmp": FuncType(INT, (PtrType(VOID), PtrType(VOID), UINT)),
    "strlen": FuncType(INT, (PtrType(CHAR),)),
    "strcpy": FuncType(PtrType(CHAR), (PtrType(CHAR), PtrType(CHAR))),
    "strcmp": FuncType(INT, (PtrType(CHAR), PtrType(CHAR))),
    "strcat": FuncType(PtrType(CHAR), (PtrType(CHAR), PtrType(CHAR))),
    "strtok": FuncType(PtrType(CHAR), (PtrType(CHAR), PtrType(CHAR))),
    "atoi": FuncType(INT, (PtrType(CHAR),)),
    "malloc": FuncType(PtrType(VOID), (UINT,)),
    "calloc": FuncType(PtrType(VOID), (UINT, UINT)),
    "free": FuncType(VOID, (PtrType(VOID),)),
    "exit": FuncType(VOID, (INT,)),
    "abs": FuncType(INT, (INT,)),
    "rand": FuncType(INT, ()),
    "srand": FuncType(VOID, (UINT,)),
    "read_int": FuncType(INT, ()),
    "read_buf": FuncType(INT, (PtrType(VOID), UINT)),
}


class _RV:
    """An rvalue: a 32-bit IR value plus its C type."""

    __slots__ = ("value", "ctype")

    def __init__(self, value: Value, ctype: CType):
        self.value = value
        self.ctype = ctype


class _LV:
    """An lvalue: an address plus the C type stored there."""

    __slots__ = ("addr", "ctype")

    def __init__(self, addr: Value, ctype: CType):
        self.addr = addr
        self.ctype = ctype


def _access_size(ctype: CType) -> int:
    if isinstance(ctype, IntType):
        return ctype.width
    return 4


class Frontend:
    def __init__(self, unit: ast.TranslationUnit, name: str = "minic"):
        self.unit = unit
        self.module = Module(name)
        self.func_types: dict[str, FuncType] = {}
        self.global_types: dict[str, CType] = {}
        self.strings: dict[bytes, str] = {}
        self._static_counter = 0
        self._label_counter = 0

    # -- driver ---------------------------------------------------------------

    def lower(self) -> Module:
        for decl in self.unit.decls:
            if isinstance(decl, ast.FuncDef):
                params = tuple(decay(t) for _n, t in decl.params)
                self.func_types[decl.name] = FuncType(decl.ret, params)
            elif isinstance(decl, ast.VarDecl):
                self._lower_global(decl)
        for decl in self.unit.decls:
            if isinstance(decl, ast.FuncDef) and decl.body is not None:
                self._lower_function(decl)
        if "main" not in self.module.functions:
            raise CompileError("program has no main function")
        self._emit_start()
        return self.module

    def _emit_start(self) -> None:
        start = Function("_start", [])
        self.module.add_function(start)
        self.module.entry_name = "_start"
        b = Builder(start)
        b.position(start.add_block("entry"))
        code = b.call("main", [])
        b.call_external("exit", [code])
        b.ret([Const(0)])

    # -- globals ----------------------------------------------------------------

    def _lower_global(self, decl: ast.VarDecl) -> None:
        init = self._global_init_payload(decl.ctype, decl.init, decl.line)
        self.module.add_global(GlobalVar(
            decl.name, max(decl.ctype.size, 1), init,
            align=decl.ctype.align))
        self.global_types[decl.name] = decl.ctype

    def _global_init_payload(self, ctype: CType, init, line: int):
        if init is None:
            return b""
        words = self._flatten_init(ctype, init, line)
        if all(isinstance(w, tuple) and w[0] == "byte" for w in words):
            return bytes(w[1] & 0xFF for w in words)
        # Mixed: encode as 32-bit word list (only word-aligned layouts).
        out = []
        for w in words:
            if w[0] == "word":
                out.append(w[1])
            elif w[0] == "byte":
                raise CompileError(
                    "byte-grain global initializer with symbolic words "
                    "is unsupported", line)
            else:
                out.append(w[1])  # ("ref", FuncRef/GlobalRef)
        return out

    def _flatten_init(self, ctype: CType, init, line: int) -> list:
        """Flatten an initializer into ('byte', v) / ('word', v) /
        ('ref', symbol) cells covering ``ctype`` exactly."""
        if isinstance(ctype, ArrayType):
            if isinstance(init, ast.StrLit) and ctype.element.size == 1:
                data = init.value + b"\x00"
                data += b"\x00" * (ctype.count - len(data))
                return [("byte", b) for b in data[:ctype.count]]
            if not isinstance(init, list):
                raise CompileError("array initializer must be a list",
                                   line)
            cells: list = []
            for i in range(ctype.count):
                item = init[i] if i < len(init) else None
                if item is None:
                    cells.extend(self._zero_cells(ctype.element))
                else:
                    cells.extend(self._flatten_init(ctype.element, item,
                                                    line))
            return cells
        if isinstance(ctype, StructType):
            if not isinstance(init, list):
                raise CompileError("struct initializer must be a list",
                                   line)
            cells = []
            for i, f in enumerate(ctype.fields):
                item = init[i] if i < len(init) else None
                if item is None:
                    cells.extend(self._zero_cells(f.ctype))
                else:
                    cells.extend(self._flatten_init(f.ctype, item, line))
            return cells
        # Scalar cell.
        value = self._const_scalar(init, line)
        if isinstance(value, tuple):  # symbolic ref
            return [value]
        size = _access_size(ctype)
        if size == 4:
            return [("word", value & 0xFFFFFFFF)]
        return [("byte", (value >> (8 * i)) & 0xFF) for i in range(size)]

    def _zero_cells(self, ctype: CType) -> list:
        if isinstance(ctype, (ArrayType, StructType)):
            return [("byte", 0)] * ctype.size
        size = _access_size(ctype)
        return [("word", 0)] if size == 4 else [("byte", 0)] * size

    def _const_scalar(self, init, line: int):
        from .parser import _const_eval
        if isinstance(init, ast.StrLit):
            return ("ref", GlobalRef(self._intern_string(init.value)))
        if isinstance(init, ast.Ident) and init.name in self.func_types:
            return ("ref", FuncRef(init.name))
        if isinstance(init, ast.Unary) and init.op == "&" and \
                isinstance(init.operand, ast.Ident):
            name = init.operand.name
            if name in self.func_types:
                return ("ref", FuncRef(name))
            if name in self.global_types:
                return ("ref", GlobalRef(name))
        value = _const_eval(init)
        if value is None:
            raise CompileError("global initializer must be constant", line)
        return value

    def _intern_string(self, value: bytes) -> str:
        name = self.strings.get(value)
        if name is None:
            name = f"str.{len(self.strings)}"
            self.strings[value] = name
            self.module.add_global(GlobalVar(
                name, len(value) + 1, value + b"\x00", align=1,
                writable=False))
        return name

    # -- functions ----------------------------------------------------------------

    def _lower_function(self, decl: ast.FuncDef) -> None:
        func = Function(decl.name, [n for n, _t in decl.params])
        self.module.add_function(func)
        self.func = func
        self.ret_type = decl.ret
        self.builder = Builder(func)
        self.builder.position(func.add_block("entry"))
        self.scopes: list[dict[str, _LV]] = [{}]
        self.break_stack: list = []
        self.continue_stack: list = []

        # Parameters land in allocas so their address can be taken.
        for param, (name, ctype) in zip(func.params, decl.params,
                                        strict=True):
            slot = self.builder.alloca(max(ctype.size, 4), ctype.align,
                                       name=name)
            self.builder.store(slot, param, 4)
            self.scopes[0][name] = _LV(slot, ctype)

        self._gen_stmt(decl.body)
        if not self.builder.block.is_terminated:
            self.builder.ret([Const(0)])

    def _new_label(self, base: str) -> str:
        self._label_counter += 1
        return f"{base}.{self._label_counter}"

    def _lookup(self, name: str, line: int) -> _LV | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        if name in self.global_types:
            return _LV(GlobalRef(name), self.global_types[name])
        return None

    # -- statements ------------------------------------------------------------------

    def _gen_stmt(self, stmt: ast.Node) -> None:
        b = self.builder
        if isinstance(stmt, ast.Block):
            self.scopes.append({})
            for inner in stmt.stmts:
                self._gen_stmt(inner)
            self.scopes.pop()
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._gen_expr(stmt.expr)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                self._gen_local_decl(decl)
        elif isinstance(stmt, ast.If):
            cond = self._gen_cond(stmt.cond)
            then_block = b.new_block(self._new_label("if.then"))
            end_block = b.new_block(self._new_label("if.end"))
            else_block = b.new_block(self._new_label("if.else")) \
                if stmt.otherwise is not None else end_block
            b.condbr(cond, then_block, else_block)
            b.position(then_block)
            self._gen_stmt(stmt.then)
            if not b.block.is_terminated:
                b.br(end_block)
            if stmt.otherwise is not None:
                b.position(else_block)
                self._gen_stmt(stmt.otherwise)
                if not b.block.is_terminated:
                    b.br(end_block)
            b.position(end_block)
        elif isinstance(stmt, ast.While):
            head = b.new_block(self._new_label("while.head"))
            body = b.new_block(self._new_label("while.body"))
            end = b.new_block(self._new_label("while.end"))
            b.br(head)
            b.position(head)
            cond = self._gen_cond(stmt.cond)
            b.condbr(cond, body, end)
            b.position(body)
            self.break_stack.append(end)
            self.continue_stack.append(head)
            self._gen_stmt(stmt.body)
            self.break_stack.pop()
            self.continue_stack.pop()
            if not b.block.is_terminated:
                b.br(head)
            b.position(end)
        elif isinstance(stmt, ast.DoWhile):
            body = b.new_block(self._new_label("do.body"))
            head = b.new_block(self._new_label("do.cond"))
            end = b.new_block(self._new_label("do.end"))
            b.br(body)
            b.position(body)
            self.break_stack.append(end)
            self.continue_stack.append(head)
            self._gen_stmt(stmt.body)
            self.break_stack.pop()
            self.continue_stack.pop()
            if not b.block.is_terminated:
                b.br(head)
            b.position(head)
            cond = self._gen_cond(stmt.cond)
            b.condbr(cond, body, end)
            b.position(end)
        elif isinstance(stmt, ast.For):
            self.scopes.append({})
            if stmt.init is not None:
                self._gen_stmt(stmt.init)
            head = b.new_block(self._new_label("for.head"))
            body = b.new_block(self._new_label("for.body"))
            step = b.new_block(self._new_label("for.step"))
            end = b.new_block(self._new_label("for.end"))
            b.br(head)
            b.position(head)
            if stmt.cond is not None:
                cond = self._gen_cond(stmt.cond)
                b.condbr(cond, body, end)
            else:
                b.br(body)
            b.position(body)
            self.break_stack.append(end)
            self.continue_stack.append(step)
            self._gen_stmt(stmt.body)
            self.break_stack.pop()
            self.continue_stack.pop()
            if not b.block.is_terminated:
                b.br(step)
            b.position(step)
            if stmt.step is not None:
                self._gen_expr(stmt.step)
            b.br(head)
            b.position(end)
            self.scopes.pop()
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                rv = self._rvalue(stmt.value)
                b.ret([rv.value])
            else:
                b.ret([Const(0)])
            b.position(b.new_block(self._new_label("dead")))
        elif isinstance(stmt, ast.Break):
            if not self.break_stack:
                raise CompileError("break outside loop/switch", stmt.line)
            b.br(self.break_stack[-1])
            b.position(b.new_block(self._new_label("dead")))
        elif isinstance(stmt, ast.Continue):
            if not self.continue_stack:
                raise CompileError("continue outside loop", stmt.line)
            b.br(self.continue_stack[-1])
            b.position(b.new_block(self._new_label("dead")))
        elif isinstance(stmt, ast.Switch):
            self._gen_switch(stmt)
        else:
            raise CompileError(f"unsupported statement {stmt!r}",
                               getattr(stmt, "line", 0))

    def _gen_switch(self, stmt: ast.Switch) -> None:
        b = self.builder
        value = self._rvalue(stmt.expr).value
        end = b.new_block(self._new_label("switch.end"))
        # One block per label position; fallthrough chains them.
        label_blocks: list = []
        cases: list[tuple[int, object]] = []
        default_block = None
        for item in stmt.body:
            if isinstance(item, ast.CaseLabel):
                block = b.new_block(self._new_label("switch.case"))
                label_blocks.append((item, block))
                if item.value is None:
                    default_block = block
                else:
                    cases.append((item.value, block))
        b.switch(value, cases, default_block or end)
        self.break_stack.append(end)
        current = None
        label_iter = iter(label_blocks)
        next_label = next(label_iter, None)
        for item in stmt.body:
            if isinstance(item, ast.CaseLabel):
                block = next_label[1]
                next_label = next(label_iter, None)
                if current is not None and not current.is_terminated:
                    b.position(current)
                    b.br(block)
                b.position(block)
                current = block
            else:
                if current is None:
                    raise CompileError("statement before first case label",
                                       item.line)
                b.position(current)
                self._gen_stmt(item)
                current = b.block
        if current is not None and not current.is_terminated:
            b.position(current)
            b.br(end)
        self.break_stack.pop()
        b.position(end)

    def _gen_local_decl(self, decl: ast.VarDecl) -> None:
        b = self.builder
        if decl.static:
            self._static_counter += 1
            gname = f"{self.func.name}.static.{decl.name}." \
                    f"{self._static_counter}"
            init = self._global_init_payload(decl.ctype, decl.init,
                                             decl.line)
            self.module.add_global(GlobalVar(
                gname, max(decl.ctype.size, 1), init,
                align=decl.ctype.align))
            self.scopes[-1][decl.name] = _LV(GlobalRef(gname), decl.ctype)
            return
        slot = self._entry_alloca(max(decl.ctype.size, 1),
                                  decl.ctype.align, decl.name)
        lv = _LV(slot, decl.ctype)
        self.scopes[-1][decl.name] = lv
        if decl.init is not None:
            self._gen_local_init(lv, decl.ctype, decl.init, decl.line)

    def _entry_alloca(self, size: int, align: int, name: str) -> Value:
        """Allocas always land in the entry block (static frame layout)."""
        from ..ir.values import Alloca
        alloca = Alloca(size, align, name)
        entry = self.func.entry
        index = 0
        for index, instr in enumerate(entry.instrs):
            if not isinstance(instr, Alloca):
                break
        else:
            index = len(entry.instrs)
        entry.insert(index, alloca)
        return alloca

    def _gen_local_init(self, lv: _LV, ctype: CType, init,
                        line: int) -> None:
        b = self.builder
        if isinstance(ctype, ArrayType):
            if isinstance(init, ast.StrLit) and ctype.element.size == 1:
                src = GlobalRef(self._intern_string(init.value))
                b.call_external("memcpy", [lv.addr, src,
                                           Const(len(init.value) + 1)])
                return
            if not isinstance(init, list):
                raise CompileError("array initializer must be a list",
                                   line)
            for i, item in enumerate(init):
                addr = b.add(lv.addr, Const(i * ctype.element.size))
                self._gen_local_init(_LV(addr, ctype.element),
                                     ctype.element, item, line)
            return
        if isinstance(ctype, StructType):
            if not isinstance(init, list):
                rv = self._rvalue(init)  # struct expression: copy it
                if not isinstance(rv.ctype, StructType):
                    raise CompileError(
                        "struct initializer must be a struct or list",
                        line)
                self._copy_struct(lv.addr, rv.value, ctype)
                return
            for f, item in zip(ctype.fields, init, strict=False):
                addr = b.add(lv.addr, Const(f.offset))
                self._gen_local_init(_LV(addr, f.ctype), f.ctype, item,
                                     line)
            return
        rv = self._rvalue(init)
        b.store(lv.addr, rv.value, _access_size(ctype))

    # -- expressions ---------------------------------------------------------------

    def _gen_cond(self, expr: ast.Node) -> Value:
        rv = self._rvalue(expr)
        return self.builder.icmp("ne", rv.value, Const(0))

    def _load(self, lv: _LV) -> _RV:
        ctype = lv.ctype
        if isinstance(ctype, (ArrayType, FuncType)):
            return _RV(lv.addr, decay(ctype))  # decay to pointer
        if isinstance(ctype, StructType):
            return _RV(lv.addr, ctype)  # struct rvalue = its address
        size = _access_size(ctype)
        loaded = self.builder.load(lv.addr, size)
        if isinstance(ctype, IntType) and ctype.width < 4 and ctype.signed:
            loaded = self.builder.unary(f"sext{ctype.width * 8}", loaded)
        return _RV(loaded, ctype)

    def _store(self, lv: _LV, rv: _RV, line: int) -> None:
        if isinstance(lv.ctype, StructType):
            self._copy_struct(lv.addr, rv.value, lv.ctype)
            return
        self.builder.store(lv.addr, rv.value, _access_size(lv.ctype))

    def _copy_struct(self, dst: Value, src: Value,
                     ctype: StructType) -> None:
        b = self.builder
        size = ctype.size
        if size > 64:
            b.call_external("memcpy", [dst, src, Const(size)])
            return
        offset = 0
        while offset + 4 <= size:
            word = b.load(b.add(src, Const(offset)), 4)
            b.store(b.add(dst, Const(offset)), word, 4)
            offset += 4
        while offset < size:
            byte = b.load(b.add(src, Const(offset)), 1)
            b.store(b.add(dst, Const(offset)), byte, 1)
            offset += 1

    def _rvalue(self, expr: ast.Node) -> _RV:
        rv = self._gen_expr(expr)
        if isinstance(rv, _LV):
            return self._load(rv)
        return rv

    def _lvalue(self, expr: ast.Node) -> _LV:
        out = self._gen_expr(expr)
        if isinstance(out, _LV):
            return out
        raise CompileError("expression is not an lvalue",
                           getattr(expr, "line", 0))

    def _gen_expr(self, expr: ast.Node) -> _RV | _LV:
        b = self.builder
        if isinstance(expr, ast.IntLit):
            return _RV(Const(expr.value), INT)
        if isinstance(expr, ast.StrLit):
            return _RV(GlobalRef(self._intern_string(expr.value)),
                       PtrType(CHAR))
        if isinstance(expr, ast.Ident):
            lv = self._lookup(expr.name, expr.line)
            if lv is not None:
                return lv
            if expr.name in self.func_types:
                return _RV(FuncRef(expr.name),
                           PtrType(self.func_types[expr.name]))
            if expr.name in LIBC_PROTOS:
                return _RV(Const(0), PtrType(LIBC_PROTOS[expr.name]))
            raise CompileError(f"undefined identifier {expr.name!r}",
                               expr.line)
        if isinstance(expr, ast.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, ast.Postfix):
            lv = self._lvalue(expr.operand)
            old = self._load(lv)
            delta = pointee_size(old.ctype) \
                if isinstance(decay(old.ctype), PtrType) else 1
            op = "add" if expr.op == "++" else "sub"
            new = b.binop(op, old.value, Const(delta))
            self._store(lv, _RV(new, old.ctype), expr.line)
            return old
        if isinstance(expr, ast.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._gen_assign(expr)
        if isinstance(expr, ast.Ternary):
            return self._gen_ternary(expr)
        if isinstance(expr, ast.Call):
            return self._gen_call(expr)
        if isinstance(expr, ast.Index):
            base = self._rvalue(expr.base)
            ptr = decay(base.ctype)
            if not isinstance(ptr, PtrType):
                raise CompileError("indexing a non-pointer", expr.line)
            index = self._rvalue(expr.index)
            scale = pointee_size(base.ctype)
            offset = index.value if scale == 1 else \
                b.mul(index.value, Const(scale))
            addr = b.add(base.value, offset)
            return _LV(addr, ptr.pointee)
        if isinstance(expr, ast.Member):
            if expr.arrow:
                base = self._rvalue(expr.base)
                ptr = decay(base.ctype)
                if not isinstance(ptr, PtrType) or \
                        not isinstance(ptr.pointee, StructType):
                    raise CompileError("-> on non-struct-pointer",
                                       expr.line)
                struct = ptr.pointee
                addr = base.value
            else:
                lv = self._gen_expr(expr.base)
                if isinstance(lv, _LV) and isinstance(lv.ctype, StructType):
                    struct, addr = lv.ctype, lv.addr
                elif isinstance(lv, _RV) and isinstance(lv.ctype,
                                                        StructType):
                    struct, addr = lv.ctype, lv.value
                else:
                    raise CompileError(". on non-struct", expr.line)
            field = struct.field_named(expr.name)
            faddr = b.add(addr, Const(field.offset)) if field.offset \
                else addr
            return _LV(faddr, field.ctype)
        if isinstance(expr, ast.SizeofExpr):
            inner = self._gen_expr(expr.operand)
            ctype = inner.ctype
            return _RV(Const(max(ctype.size, 1)), UINT)
        if isinstance(expr, ast.SizeofType):
            return _RV(Const(max(expr.ctype.size, 1)), UINT)
        if isinstance(expr, ast.Cast):
            rv = self._rvalue(expr.operand)
            value = rv.value
            if isinstance(expr.ctype, IntType) and expr.ctype.width < 4:
                op = ("sext" if expr.ctype.signed else "zext") + \
                     str(expr.ctype.width * 8)
                value = b.unary(op, value)
            return _RV(value, expr.ctype)
        raise CompileError(f"unsupported expression {expr!r}",
                           getattr(expr, "line", 0))

    def _gen_unary(self, expr: ast.Unary) -> _RV | _LV:
        b = self.builder
        if expr.op == "&":
            lv = self._lvalue(expr.operand)
            return _RV(lv.addr, PtrType(lv.ctype))
        if expr.op == "*":
            rv = self._rvalue(expr.operand)
            ptr = decay(rv.ctype)
            if not isinstance(ptr, PtrType):
                raise CompileError("dereferencing a non-pointer",
                                   expr.line)
            if isinstance(ptr.pointee, FuncType):
                return _RV(rv.value, ptr)  # deref of fn ptr is a no-op
            return _LV(rv.value, ptr.pointee)
        if expr.op in ("++", "--"):
            lv = self._lvalue(expr.operand)
            old = self._load(lv)
            delta = pointee_size(old.ctype) \
                if isinstance(decay(old.ctype), PtrType) else 1
            op = "add" if expr.op == "++" else "sub"
            new = b.binop(op, old.value, Const(delta))
            self._store(lv, _RV(new, old.ctype), expr.line)
            return _RV(new, old.ctype)
        rv = self._rvalue(expr.operand)
        if expr.op == "-":
            return _RV(b.unary("neg", rv.value), INT)
        if expr.op == "~":
            return _RV(b.unary("not", rv.value), INT)
        if expr.op == "!":
            return _RV(b.icmp("eq", rv.value, Const(0)), INT)
        raise CompileError(f"unsupported unary {expr.op}", expr.line)

    def _gen_binary(self, expr: ast.Binary) -> _RV:
        b = self.builder
        op = expr.op
        if op == ",":
            self._gen_expr(expr.lhs)
            return self._rvalue(expr.rhs)
        if op in ("&&", "||"):
            return self._gen_logical(expr)
        lhs = self._rvalue(expr.lhs)
        rhs = self._rvalue(expr.rhs)
        lptr = isinstance(decay(lhs.ctype), PtrType)
        rptr = isinstance(decay(rhs.ctype), PtrType)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            unsigned = lptr or rptr or _is_unsigned(lhs.ctype) \
                or _is_unsigned(rhs.ctype)
            pred = _CMP_PRED[(op, unsigned)]
            return _RV(b.icmp(pred, lhs.value, rhs.value), INT)
        if op == "+":
            if lptr and rptr:
                raise CompileError("pointer + pointer", expr.line)
            if lptr or rptr:
                ptr, idx = (lhs, rhs) if lptr else (rhs, lhs)
                scale = pointee_size(ptr.ctype)
                offset = idx.value if scale == 1 else \
                    b.mul(idx.value, Const(scale))
                return _RV(b.add(ptr.value, offset), decay(ptr.ctype))
            return _RV(b.add(lhs.value, rhs.value), lhs.ctype)
        if op == "-":
            if lptr and rptr:
                diff = b.sub(lhs.value, rhs.value)
                scale = pointee_size(lhs.ctype)
                if scale != 1:
                    diff = b.binop("div", diff, Const(scale))
                return _RV(diff, INT)
            if lptr:
                scale = pointee_size(lhs.ctype)
                offset = rhs.value if scale == 1 else \
                    b.mul(rhs.value, Const(scale))
                return _RV(b.sub(lhs.value, offset), decay(lhs.ctype))
            return _RV(b.sub(lhs.value, rhs.value), lhs.ctype)
        if op in ("*", "/", "%"):
            if op == "/" and (_is_unsigned(lhs.ctype)
                              or _is_unsigned(rhs.ctype)):
                raise CompileError("unsigned division is unsupported",
                                   expr.line)
            ir_op = {"*": "mul", "/": "div", "%": "rem"}[op]
            return _RV(b.binop(ir_op, lhs.value, rhs.value), INT)
        if op in ("&", "|", "^"):
            ir_op = {"&": "and", "|": "or", "^": "xor"}[op]
            return _RV(b.binop(ir_op, lhs.value, rhs.value), lhs.ctype)
        if op == "<<":
            return _RV(b.binop("shl", lhs.value, rhs.value), lhs.ctype)
        if op == ">>":
            ir_op = "shr" if _is_unsigned(lhs.ctype) else "sar"
            return _RV(b.binop(ir_op, lhs.value, rhs.value), lhs.ctype)
        raise CompileError(f"unsupported binary {op}", expr.line)

    def _gen_logical(self, expr: ast.Binary) -> _RV:
        b = self.builder
        result = self._entry_alloca(4, 4, "logtmp")
        rhs_block = b.new_block(self._new_label("log.rhs"))
        end = b.new_block(self._new_label("log.end"))
        lhs = self._gen_cond(expr.lhs)
        b.store(result, lhs, 4)
        if expr.op == "&&":
            b.condbr(lhs, rhs_block, end)
        else:
            b.condbr(lhs, end, rhs_block)
        b.position(rhs_block)
        rhs = self._gen_cond(expr.rhs)
        b.store(result, rhs, 4)
        b.br(end)
        b.position(end)
        return _RV(b.load(result, 4), INT)

    def _gen_ternary(self, expr: ast.Ternary) -> _RV:
        b = self.builder
        result = self._entry_alloca(4, 4, "terntmp")
        then_block = b.new_block(self._new_label("tern.then"))
        else_block = b.new_block(self._new_label("tern.else"))
        end = b.new_block(self._new_label("tern.end"))
        cond = self._gen_cond(expr.cond)
        b.condbr(cond, then_block, else_block)
        b.position(then_block)
        tv = self._rvalue(expr.if_true)
        b.store(result, tv.value, 4)
        b.br(end)
        b.position(else_block)
        fv = self._rvalue(expr.if_false)
        b.store(result, fv.value, 4)
        b.br(end)
        b.position(end)
        return _RV(b.load(result, 4), tv.ctype)

    def _gen_assign(self, expr: ast.Assign) -> _RV:
        b = self.builder
        lv = self._lvalue(expr.target)
        if expr.op == "=":
            rv = self._rvalue(expr.value)
            self._store(lv, rv, expr.line)
            return rv
        old = self._load(lv)
        rhs = self._rvalue(expr.value)
        op = expr.op[:-1]
        combined = self._gen_binary_values(op, old, rhs, expr.line)
        self._store(lv, combined, expr.line)
        return combined

    def _gen_binary_values(self, op: str, lhs: _RV, rhs: _RV,
                           line: int) -> _RV:
        b = self.builder
        lptr = isinstance(decay(lhs.ctype), PtrType)
        if op in ("+", "-") and lptr:
            scale = pointee_size(lhs.ctype)
            offset = rhs.value if scale == 1 else \
                b.mul(rhs.value, Const(scale))
            ir_op = "add" if op == "+" else "sub"
            return _RV(b.binop(ir_op, lhs.value, offset),
                       decay(lhs.ctype))
        ir_op = {"+": "add", "-": "sub", "*": "mul", "/": "div",
                 "%": "rem", "&": "and", "|": "or", "^": "xor",
                 "<<": "shl"}.get(op)
        if op == ">>":
            ir_op = "shr" if _is_unsigned(lhs.ctype) else "sar"
        if ir_op is None:
            raise CompileError(f"unsupported compound op {op}=", line)
        return _RV(b.binop(ir_op, lhs.value, rhs.value), lhs.ctype)

    def _gen_call(self, expr: ast.Call) -> _RV:
        b = self.builder
        args = [self._rvalue(a) for a in expr.args]
        arg_values = [a.value for a in args]
        if isinstance(expr.callee, ast.Ident):
            name = expr.callee.name
            if self._lookup(name, expr.line) is None:
                if name in self.func_types:
                    call = b.call(name, arg_values)
                    return _RV(call, self.func_types[name].ret)
                if name in LIBC_PROTOS:
                    call = b.call_external(name, arg_values)
                    return _RV(call, LIBC_PROTOS[name].ret)
                raise CompileError(f"call to undefined function {name!r}",
                                   expr.line)
        target = self._rvalue(expr.callee)
        ftype = decay(target.ctype)
        if isinstance(ftype, PtrType) and isinstance(ftype.pointee,
                                                     FuncType):
            ret = ftype.pointee.ret
        else:
            ret = INT
        call = b.call_indirect(target.value, arg_values)
        return _RV(call, ret)


_CMP_PRED = {
    ("==", False): "eq", ("==", True): "eq",
    ("!=", False): "ne", ("!=", True): "ne",
    ("<", False): "slt", ("<", True): "ult",
    ("<=", False): "sle", ("<=", True): "ule",
    (">", False): "sgt", (">", True): "ugt",
    (">=", False): "sge", (">=", True): "uge",
}


def _is_unsigned(ctype: CType) -> bool:
    return isinstance(ctype, IntType) and not ctype.signed


def lower_to_ir(unit: ast.TranslationUnit, name: str = "minic") -> Module:
    return Frontend(unit, name).lower()
