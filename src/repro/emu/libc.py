"""Deterministic model of the external C library.

Both execution engines link against this module: the machine emulator
reads call arguments from the emulated stack (cdecl), while recompiled IR
may pass arguments explicitly once the varargs refinement (paper §5.2) has
recovered call-site signatures.  The :class:`Args` abstraction hides the
difference.

Every function is deterministic (``rand`` is a fixed LCG, input comes from
an explicit input stream), so "same stdout bytes + same exit code" is a
sound functional-equivalence check between an input binary and its
recompiled counterpart.
"""

from __future__ import annotations

from ..binary.image import HEAP_BASE, HEAP_SIZE
from ..errors import EmulationError
from .memory import Memory


class ExitProgram(Exception):
    """Raised by ``exit`` to unwind the executing engine."""

    def __init__(self, code: int):
        self.code = code & 0xFFFFFFFF
        super().__init__(f"exit({code})")


class Args:
    """Accessor for the 32-bit arguments of one external call."""

    def get(self, index: int) -> int:
        raise NotImplementedError


class StackArgs(Args):
    """Arguments laid out on the stack, cdecl-style, at ``base``."""

    def __init__(self, mem: Memory, base: int):
        self._mem = mem
        self._base = base

    def get(self, index: int) -> int:
        return self._mem.read(self._base + 4 * index, 4)


class ListArgs(Args):
    """Arguments passed as an explicit list (post-recovery IR calls)."""

    def __init__(self, values: list[int]):
        self._values = values

    def get(self, index: int) -> int:
        try:
            return self._values[index] & 0xFFFFFFFF
        except IndexError:
            raise EmulationError(
                f"external call read missing argument {index}") from None


def parse_format(fmt: bytes) -> list[str]:
    """Return the conversion kinds of a printf-style format string.

    Kinds are ``"int"`` (%d/%u/%x/%c) and ``"str"`` (%s).  This helper is
    shared with the varargs refinement (paper §5.2), which inspects format
    strings at runtime to recover per-call-site signatures.
    """
    kinds: list[str] = []
    i = 0
    while i < len(fmt):
        if fmt[i] != ord("%"):
            i += 1
            continue
        i += 1
        # Skip flags/width (a small, fixed subset: '-', '0'..'9').
        while i < len(fmt) and fmt[i:i + 1] in b"-0123456789":
            i += 1
        if i >= len(fmt):
            break
        conv = fmt[i:i + 1]
        i += 1
        if conv == b"%":
            continue
        if conv == b"s":
            kinds.append("str")
        elif conv in (b"d", b"u", b"x", b"c"):
            kinds.append("int")
        else:
            raise EmulationError(f"unsupported conversion %{conv.decode()}")
    return kinds


def _signed(v: int) -> int:
    v &= 0xFFFFFFFF
    return v - 0x100000000 if v >= 0x80000000 else v


class LibC:
    """Deterministic libc model bound to one memory image.

    ``input_items`` is the run's input: a list of ints and byte strings,
    consumed in order by ``read_int`` and ``read_buf``.  Output accumulates
    in :attr:`stdout`.
    """

    def __init__(self, mem: Memory,
                 input_items: list[int | bytes] | None = None):
        self.mem = mem
        self.stdout = bytearray()
        self._input = list(input_items or [])
        self._input_pos = 0
        self._heap_next = HEAP_BASE
        self._rand_state = 1
        self._strtok_ptr = 0
        self._dispatch = {
            "printf": self._printf,
            "sprintf": self._sprintf,
            "puts": self._puts,
            "putchar": self._putchar,
            "memcpy": self._memcpy,
            "memmove": self._memcpy,
            "memset": self._memset,
            "memcmp": self._memcmp,
            "strlen": self._strlen,
            "strcpy": self._strcpy,
            "strcmp": self._strcmp,
            "strcat": self._strcat,
            "strtok": self._strtok,
            "atoi": self._atoi,
            "malloc": self._malloc,
            "calloc": self._calloc,
            "free": self._free,
            "exit": self._exit,
            "abs": self._abs,
            "rand": self._rand,
            "srand": self._srand,
            "read_int": self._read_int,
            "read_buf": self._read_buf,
        }

    @property
    def known_functions(self) -> frozenset[str]:
        return frozenset(self._dispatch)

    def call(self, name: str, args: Args) -> int:
        """Invoke external function ``name``; returns the eax value."""
        try:
            impl = self._dispatch[name]
        except KeyError:
            raise EmulationError(f"call to unknown external {name!r}") \
                from None
        return impl(args) & 0xFFFFFFFF

    # -- formatted output ---------------------------------------------------

    def format(self, fmt: bytes, args: Args, first_vararg: int) -> bytes:
        """Render ``fmt`` with varargs starting at ``first_vararg``."""
        out = bytearray()
        argi = first_vararg
        i = 0
        while i < len(fmt):
            ch = fmt[i]
            if ch != ord("%"):
                out.append(ch)
                i += 1
                continue
            i += 1
            pad_zero = False
            left = False
            width = 0
            while i < len(fmt) and fmt[i:i + 1] in b"-0123456789":
                c = fmt[i:i + 1]
                if c == b"-":
                    left = True
                elif c == b"0" and width == 0:
                    pad_zero = True
                else:
                    width = width * 10 + int(c)
                i += 1
            conv = fmt[i:i + 1]
            i += 1
            if conv == b"%":
                piece = b"%"
            elif conv == b"d":
                piece = str(_signed(args.get(argi))).encode()
                argi += 1
            elif conv == b"u":
                piece = str(args.get(argi) & 0xFFFFFFFF).encode()
                argi += 1
            elif conv == b"x":
                piece = format(args.get(argi) & 0xFFFFFFFF, "x").encode()
                argi += 1
            elif conv == b"c":
                piece = bytes([args.get(argi) & 0xFF])
                argi += 1
            elif conv == b"s":
                piece = self.mem.read_cstring(args.get(argi))
                argi += 1
            else:
                raise EmulationError(
                    f"unsupported conversion %{conv.decode()}")
            if len(piece) < width:
                fill = b"0" if pad_zero and not left else b" "
                pad = fill * (width - len(piece))
                piece = piece + pad if left else pad + piece
            out += piece
        return bytes(out)

    def _printf(self, args: Args) -> int:
        fmt = self.mem.read_cstring(args.get(0))
        rendered = self.format(fmt, args, 1)
        self.stdout += rendered
        return len(rendered)

    def _sprintf(self, args: Args) -> int:
        dst = args.get(0)
        fmt = self.mem.read_cstring(args.get(1))
        rendered = self.format(fmt, args, 2)
        self.mem.write_bytes(dst, rendered + b"\x00")
        return len(rendered)

    def _puts(self, args: Args) -> int:
        s = self.mem.read_cstring(args.get(0))
        self.stdout += s + b"\n"
        return len(s) + 1

    def _putchar(self, args: Args) -> int:
        c = args.get(0) & 0xFF
        self.stdout.append(c)
        return c

    # -- memory and strings -------------------------------------------------

    def _memcpy(self, args: Args) -> int:
        dst, src, n = args.get(0), args.get(1), args.get(2)
        self.mem.write_bytes(dst, self.mem.read_bytes(src, n))
        return dst

    def _memset(self, args: Args) -> int:
        dst, c, n = args.get(0), args.get(1), args.get(2)
        self.mem.write_bytes(dst, bytes([c & 0xFF]) * n)
        return dst

    def _memcmp(self, args: Args) -> int:
        a = self.mem.read_bytes(args.get(0), args.get(2))
        b = self.mem.read_bytes(args.get(1), args.get(2))
        return 0 if a == b else (1 if a > b else -1)

    def _strlen(self, args: Args) -> int:
        return len(self.mem.read_cstring(args.get(0)))

    def _strcpy(self, args: Args) -> int:
        dst = args.get(0)
        s = self.mem.read_cstring(args.get(1))
        self.mem.write_bytes(dst, s + b"\x00")
        return dst

    def _strcmp(self, args: Args) -> int:
        a = self.mem.read_cstring(args.get(0))
        b = self.mem.read_cstring(args.get(1))
        return 0 if a == b else (1 if a > b else -1)

    def _strcat(self, args: Args) -> int:
        dst = args.get(0)
        existing = self.mem.read_cstring(dst)
        s = self.mem.read_cstring(args.get(1))
        self.mem.write_bytes(dst + len(existing), s + b"\x00")
        return dst

    def _strtok(self, args: Args) -> int:
        s, delims_ptr = args.get(0), args.get(1)
        delims = self.mem.read_cstring(delims_ptr)
        ptr = s if s != 0 else self._strtok_ptr
        if ptr == 0:
            return 0
        while self.mem.read(ptr, 1) != 0 and \
                self.mem.read(ptr, 1) in delims:
            ptr += 1
        if self.mem.read(ptr, 1) == 0:
            self._strtok_ptr = 0
            return 0
        start = ptr
        while self.mem.read(ptr, 1) != 0 and \
                self.mem.read(ptr, 1) not in delims:
            ptr += 1
        if self.mem.read(ptr, 1) != 0:
            self.mem.write(ptr, 1, 0)
            self._strtok_ptr = ptr + 1
        else:
            self._strtok_ptr = 0
        return start

    def _atoi(self, args: Args) -> int:
        s = self.mem.read_cstring(args.get(0))
        text = s.decode("latin-1").strip()
        sign = 1
        if text[:1] in ("+", "-"):
            sign = -1 if text[0] == "-" else 1
            text = text[1:]
        digits = ""
        for ch in text:
            if not ch.isdigit():
                break
            digits += ch
        return sign * int(digits) if digits else 0

    # -- heap ---------------------------------------------------------------

    def _malloc(self, args: Args) -> int:
        size = args.get(0)
        aligned = (size + 15) & ~15
        if self._heap_next + aligned > HEAP_BASE + HEAP_SIZE:
            raise EmulationError("heap exhausted")
        ptr = self._heap_next
        self._heap_next += max(aligned, 16)
        return ptr

    def _calloc(self, args: Args) -> int:
        total = args.get(0) * args.get(1)
        ptr = self._malloc(ListArgs([total]))
        self.mem.write_bytes(ptr, b"\x00" * total)
        return ptr

    def _free(self, args: Args) -> int:
        return 0  # bump allocator: free is a no-op

    # -- process / misc -----------------------------------------------------

    def _exit(self, args: Args) -> int:
        raise ExitProgram(args.get(0))

    def _abs(self, args: Args) -> int:
        return abs(_signed(args.get(0)))

    def _rand(self, args: Args) -> int:
        self._rand_state = (self._rand_state * 1103515245 + 12345) \
            & 0x7FFFFFFF
        return (self._rand_state >> 16) & 0x7FFF

    def _srand(self, args: Args) -> int:
        self._rand_state = args.get(0) & 0x7FFFFFFF or 1
        return 0

    # -- input stream -------------------------------------------------------

    def _next_input(self) -> int | bytes | None:
        if self._input_pos >= len(self._input):
            return None
        item = self._input[self._input_pos]
        self._input_pos += 1
        return item

    def _read_int(self, args: Args) -> int:
        item = self._next_input()
        if not isinstance(item, int):
            return 0xFFFFFFFF  # -1: end of input
        return item

    def _read_buf(self, args: Args) -> int:
        dst, maxlen = args.get(0), args.get(1)
        item = self._next_input()
        if not isinstance(item, bytes):
            return 0
        blob = item[:maxlen]
        self.mem.write_bytes(dst, blob)
        return len(blob)
