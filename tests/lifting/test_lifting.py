"""Trace-based CFG recovery, function recovery, and translation."""

import pytest

from repro.cc import compile_source
from repro.emu import run_binary, trace_binary
from repro.ir import run_module, verify_module
from repro.lifting import (
    lift_traces,
    recover_cfg,
    recover_functions,
)
from tests.conftest import FEATURE_SOURCE, KERNEL_SOURCE, cached_image


def traces_for(source, compiler="gcc12", opt="3", inputs=None):
    image = cached_image(source, compiler, opt)
    return image, trace_binary(image.stripped(), inputs or [[]])


def test_cfg_blocks_cover_executed_code():
    image, traces = traces_for(KERNEL_SOURCE)
    cfg = recover_cfg(traces)
    covered = set()
    for block in cfg.blocks.values():
        for instr in block.instrs:
            covered.add(instr.addr)
    assert covered == traces.executed


def test_cfg_untraced_branch_directions_flagged():
    src = r'''
int main() {
    int x = read_int();
    if (x > 100) printf("big\n");
    printf("done\n");
    return 0;
}
'''
    image = compile_source(src, "gcc12", "0", "t")
    traces = trace_binary(image.stripped(), [[5]])
    cfg = recover_cfg(traces)
    assert any(b.has_untraced_edge for b in cfg.blocks.values())


def test_function_recovery_finds_call_targets():
    image, traces = traces_for(FEATURE_SOURCE)
    cfg = recover_cfg(traces)
    functions = recover_functions(cfg)
    assert cfg.entry in functions
    # fib is recursive, so it cannot be inlined away: its entry must be
    # among the recovered functions.
    assert len(functions) >= 2
    for func in functions.values():
        assert func.entry in func.blocks


def test_function_bodies_are_disjoint():
    image, traces = traces_for(FEATURE_SOURCE)
    functions = recover_functions(recover_cfg(traces))
    seen = {}
    for entry, func in functions.items():
        for addr in func.blocks:
            assert addr not in seen, (hex(addr), hex(entry),
                                      hex(seen[addr]))
            seen[addr] = entry


def test_lifted_module_replays_traced_run():
    image, traces = traces_for(FEATURE_SOURCE)
    module = lift_traces(traces)
    verify_module(module)
    native = run_binary(image)
    result = run_module(module)
    assert result.stdout == native.stdout
    assert result.exit_code == native.exit_code


def test_lifted_module_structure():
    image, traces = traces_for(KERNEL_SOURCE)
    module = lift_traces(traces)
    # Original data pinned, emulated stack present, address table filled.
    from repro.lifting import EMUSTACK_NAME
    assert EMUSTACK_NAME in module.globals
    assert any(g.fixed_addr is not None and g.name != EMUSTACK_NAME
               for g in module.globals.values())
    assert module.address_table
    for func in module.functions.values():
        if func.name.startswith("fn_"):
            assert func.params[0].name == "sp"
            assert func.nresults == 7


def test_untraced_input_can_trap():
    src = r'''
int main() {
    int x = read_int();
    if (x > 100) { printf("big\n"); return 1; }
    printf("small\n");
    return 0;
}
'''
    image = compile_source(src, "gcc12", "0", "t")
    traces = trace_binary(image.stripped(), [[5]])
    module = lift_traces(traces)
    assert run_module(module, [7]).stdout == b"small\n"
    from repro.errors import InterpError
    with pytest.raises(InterpError):
        run_module(module, [999])  # untraced direction


def test_incremental_lifting_covers_both_directions():
    src = r'''
int main() {
    int x = read_int();
    if (x > 100) { printf("big\n"); return 1; }
    printf("small\n");
    return 0;
}
'''
    image = compile_source(src, "gcc12", "0", "t")
    traces = trace_binary(image.stripped(), [[5], [999]])
    module = lift_traces(traces)
    assert run_module(module, [999]).stdout == b"big\n"
    assert run_module(module, [7]).stdout == b"small\n"


def test_lift_across_all_personalities():
    for comp, lvl in (("gcc12", "3"), ("gcc12", "0"), ("gcc44", "3"),
                      ("clang16", "3")):
        image, traces = traces_for(KERNEL_SOURCE, comp, lvl)
        module = lift_traces(traces)
        verify_module(module)
        assert run_module(module).stdout == run_binary(image).stdout
