"""Sparse memory: little-endian access, page boundaries, strings."""

import pytest
from hypothesis import given, strategies as st

from repro.binary.image import Section, BinaryImage
from repro.emu.memory import PAGE_SIZE, Memory
from repro.errors import EmulationError


def test_zero_initialized():
    mem = Memory()
    assert mem.read(0x12345, 4) == 0
    assert mem.read_bytes(0x999, 16) == b"\x00" * 16


def test_little_endian_round_trip():
    mem = Memory()
    mem.write(0x100, 4, 0x11223344)
    assert mem.read(0x100, 4) == 0x11223344
    assert mem.read(0x100, 1) == 0x44
    assert mem.read(0x103, 1) == 0x11
    assert mem.read(0x100, 2) == 0x3344


def test_write_truncates_to_size():
    mem = Memory()
    mem.write(0x10, 1, 0x1FF)
    assert mem.read(0x10, 1) == 0xFF
    assert mem.read(0x11, 1) == 0


def test_cross_page_access():
    mem = Memory()
    addr = PAGE_SIZE - 2
    mem.write(addr, 4, 0xAABBCCDD)
    assert mem.read(addr, 4) == 0xAABBCCDD
    assert mem.read(PAGE_SIZE, 1) == 0xBB


def test_cross_page_bytes():
    mem = Memory()
    blob = bytes(range(100))
    mem.write_bytes(PAGE_SIZE - 50, blob)
    assert mem.read_bytes(PAGE_SIZE - 50, 100) == blob


def test_out_of_range_rejected():
    mem = Memory()
    with pytest.raises(EmulationError):
        mem.read(0x100000000 - 1, 4)
    with pytest.raises(EmulationError):
        mem.write(-1, 4, 0)


def test_cstring():
    mem = Memory()
    mem.write_bytes(0x400, b"hello\x00world")
    assert mem.read_cstring(0x400) == b"hello"


def test_unterminated_cstring_rejected():
    mem = Memory()
    mem.write_bytes(0x400, b"\x01" * 16)
    with pytest.raises(EmulationError):
        mem.read_cstring(0x400, limit=8)


def test_load_image_places_sections():
    image = BinaryImage(
        text=Section(".text", 0x1000, b"\xAB\xCD"),
        data_sections=[Section(".data", 0x2000, b"xyz", writable=True)])
    mem = Memory()
    mem.load_image(image)
    assert mem.read(0x1000, 2) == 0xCDAB
    assert mem.read_bytes(0x2000, 3) == b"xyz"


@given(st.integers(min_value=0, max_value=0xFFFFF000),
       st.integers(min_value=0, max_value=0xFFFFFFFF),
       st.sampled_from([1, 2, 4]))
def test_write_read_property(addr, value, size):
    mem = Memory()
    mem.write(addr, size, value)
    assert mem.read(addr, size) == value & ((1 << (8 * size)) - 1)
