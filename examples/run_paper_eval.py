#!/usr/bin/env python
"""Regenerate the paper's evaluation: Table 1, Figure 6, Figure 7, and
the §6.1 functionality matrix.

Usage:
    python examples/run_paper_eval.py            # quick 4-benchmark sweep
    python examples/run_paper_eval.py --full     # all ten benchmarks
    python examples/run_paper_eval.py --fresh    # ignore the disk cache
    python examples/run_paper_eval.py --jobs 8   # parallel sweep

Results (and intermediate traces/lifts) are cached in .eval_cache/.
Cells are independent, so ``--jobs N`` fans the first sweep out over a
process pool; later figures reuse its cached cells.

``--obs-out report.json`` (or ``REPRO_OBS=1``) activates repro.obs: the
sweep aggregates per-cell timings, pipeline stage spans, and cache hit
rates across every worker, prints a summary to stderr, and ``--obs-out``
writes the full JSON report.
"""

import argparse
import os
import shutil
import sys
import time
from pathlib import Path

from repro import obs
from repro.evaluation import (
    QUICK_WORKLOADS,
    build_figure6,
    build_figure7,
    build_functionality,
    build_table1,
)
from repro.workloads import WORKLOAD_ORDER


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run all ten benchmarks")
    parser.add_argument("--fresh", action="store_true",
                        help="clear the measurement cache first")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="measure N cells in parallel "
                             "(0 = all cores)")
    parser.add_argument("--obs-out", metavar="PATH", default=None,
                        help="enable observability and write the JSON "
                             "report here (summary also goes to stderr)")
    args = parser.parse_args(argv)
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0, got {args.jobs}")
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    if args.obs_out:
        obs.enable()

    if args.fresh:
        shutil.rmtree(".eval_cache", ignore_errors=True)
    names = WORKLOAD_ORDER if args.full else QUICK_WORKLOADS
    started = time.time()

    def progress(workload, compiler, opt):
        elapsed = time.time() - started
        print(f"[{elapsed:6.0f}s] measured {workload} "
              f"{compiler}-O{opt}" if jobs > 1 else
              f"[{elapsed:6.0f}s] measuring {workload} "
              f"{compiler}-O{opt} ...", flush=True)

    table = build_table1(names, progress=progress, jobs=jobs)
    print("\n=== Table 1: normalized runtime vs input binary ===")
    print("(paper geomeans: nosym 1.24/0.76/1.31/1.05, "
          "sym 1.10/0.48/1.06/0.82, SW 1.14)")
    print(table.render())

    fig6 = build_figure6(names, jobs=jobs)
    print("\n=== Figure 6: normalized to gcc12 -O3 native ===")
    print(fig6.render())

    fig7 = build_figure7(names, jobs=jobs)
    print("\n=== Figure 7: stack object accuracy ===")
    print("(paper: precision 94.4%, recall 87.6%)")
    print(fig7.render())

    matrix = build_functionality(names, jobs=jobs)
    print("\n=== Functionality (§6.1) ===")
    print(matrix.render())

    print(f"\ndone in {time.time() - started:.0f}s "
          f"({'full' if args.full else 'quick'} sweep; cache in "
          f"{Path('.eval_cache').resolve()})")

    rec = obs.recorder()
    if rec is not None:
        doc = obs.export(rec)
        if args.obs_out:
            obs.write_json(rec, args.obs_out)
            print(f"observability report written to {args.obs_out}",
                  file=sys.stderr)
        print(obs.summary(doc), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
