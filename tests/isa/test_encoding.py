"""Byte encoding: every operand shape must round-trip exactly."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.isa import CONDITION_CODES, EAX, EBX, ESP, Imm, ImportRef, \
    Label, Mem, ins, jcc, setcc
from repro.isa.encoding import decode, encode
from repro.isa.registers import Reg

IMPORTS = {"printf": 0, "exit": 1}
NAMES = ["printf", "exit"]


def round_trip(instr):
    raw = encode(instr, IMPORTS)
    decoded, size = decode(raw, 0, NAMES)
    assert size == len(raw)
    assert decoded.mnemonic == instr.mnemonic
    assert decoded.cc == instr.cc
    assert decoded.operands == instr.operands
    return decoded


def test_simple_round_trips():
    round_trip(ins("mov", EAX, Imm(42)))
    round_trip(ins("ret"))
    round_trip(ins("push", Mem(ESP, disp=-8)))
    round_trip(ins("call", ImportRef("printf")))
    round_trip(setcc("ne", Reg(2, 1)))


def test_all_condition_codes_encode_distinctly():
    codes = set()
    for cc in CONDITION_CODES:
        raw = encode(jcc(cc, Imm(0x1000)), IMPORTS)
        codes.add(raw[0])
        round_trip(jcc(cc, Imm(0x1000)))
    assert len(codes) == len(CONDITION_CODES)


def test_negative_immediates():
    decoded = round_trip(ins("add", ESP, Imm(-16)))
    imm = decoded.operands[1]
    assert imm.value == -16


def test_mem_full_form():
    m = Mem(EBX, EAX, 4, -1234, 2)
    round_trip(ins("mov", Reg(0, 2), m))


def test_unknown_import_rejected():
    with pytest.raises(EncodingError):
        encode(ins("call", ImportRef("nope")), IMPORTS)


def test_unresolved_label_rejected():
    with pytest.raises(EncodingError):
        encode(ins("jmp", Label("later")), IMPORTS)


def test_bad_opcode_rejected():
    with pytest.raises(EncodingError):
        decode(b"\xff\x00", 0, NAMES)


REGS32 = st.sampled_from([Reg(i) for i in range(8)])
IMMS = st.integers(min_value=-(2**31), max_value=2**31 - 1).map(Imm)


@st.composite
def mems(draw):
    base = draw(st.one_of(st.none(), REGS32))
    index = draw(st.one_of(st.none(), REGS32))
    scale = draw(st.sampled_from([1, 2, 4, 8]))
    disp = draw(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    size = draw(st.sampled_from([1, 2, 4]))
    return Mem(base, index, scale, disp, size)


@given(st.sampled_from(["mov", "add", "sub", "and", "or", "xor", "cmp"]),
       st.one_of(REGS32, mems()), st.one_of(REGS32, IMMS, mems()))
def test_two_operand_round_trip_property(mnemonic, dst, src):
    round_trip(ins(mnemonic, dst, src))


@given(st.lists(st.sampled_from(
    [ins("nop"), ins("ret"), ins("push", EAX), ins("pop", EBX),
     ins("mov", EAX, Imm(7)), ins("cdq"), ins("leave")]),
    min_size=1, max_size=20))
def test_instruction_stream_decodes_in_sequence(instrs):
    blob = b"".join(encode(i, IMPORTS) for i in instrs)
    offset = 0
    decoded = []
    while offset < len(blob):
        instr, size = decode(blob, offset, NAMES)
        decoded.append(instr)
        offset += size
    assert [d.mnemonic for d in decoded] == [i.mnemonic for i in instrs]
