"""ArtifactStore: keys, atomic writes, corruption, campaigns."""

import logging
import pickle

import pytest

from repro import obs
from repro.store import (
    ArtifactStore,
    Campaign,
    atomic_write_bytes,
    decode_items,
    decode_runs,
    encode_items,
    encode_runs,
    image_key,
    options_tag,
    result_key,
    trace_key,
)


class _FakeImage:
    def __init__(self, text):
        self._text = text

    def to_json(self):
        return self._text


@pytest.fixture(autouse=True)
def _obs_off():
    yield
    obs.disable_ledger()
    obs.disable()


# -- keys ----------------------------------------------------------------

def test_image_key_tracks_content():
    a = image_key(_FakeImage('{"x": 1}'))
    b = image_key(_FakeImage('{"x": 1}'))
    c = image_key(_FakeImage('{"x": 2}'))
    assert a == b
    assert a != c
    assert len(a) == 32


def test_trace_key_separates_inputs_and_cost_model():
    base = trace_key("img", [1, 2])
    assert trace_key("img", [1, 2]) == base
    assert trace_key("img", [2, 1]) != base
    assert trace_key("img", [1, 2], costs="alt") != base
    assert trace_key("other", [1, 2]) != base


def test_result_key_is_order_sensitive():
    opts = options_tag(optimize=True)
    base = result_key("img", [[1], [2]], opts)
    assert result_key("img", [[1], [2]], opts) == base
    assert result_key("img", [[2], [1]], opts) != base
    assert result_key("img", [[1], [2]], options_tag(optimize=False)) != base


def test_options_tag_is_canonical():
    assert options_tag(b=2, a=1) == options_tag(a=1, b=2)
    assert options_tag(a=1) != options_tag(a=2)


def test_items_encode_round_trips_bytes_and_ints():
    items = [3, b"hi\xff", 0]
    assert decode_items(encode_items(items)) == items
    runs = [[1, b"x"], [2]]
    assert decode_runs(encode_runs(runs)) == runs
    # The encoded form must be plain JSON values.
    import json
    json.dumps(encode_runs(runs))


# -- atomic writes -------------------------------------------------------

def test_atomic_write_creates_parents_and_leaves_no_temps(tmp_path):
    target = tmp_path / "deep" / "entry.bin"
    atomic_write_bytes(target, b"one")
    assert target.read_bytes() == b"one"
    atomic_write_bytes(target, b"two")
    assert target.read_bytes() == b"two"
    leftovers = [p for p in target.parent.iterdir() if p != target]
    assert leftovers == []


def test_atomic_write_failure_cleans_up_temp(tmp_path, monkeypatch):
    target = tmp_path / "entry.bin"
    import repro.store as store_mod

    def boom(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr(store_mod.os, "replace", boom)
    with pytest.raises(OSError):
        atomic_write_bytes(target, b"payload")
    assert list(tmp_path.iterdir()) == []


# -- the store -----------------------------------------------------------

def test_round_trip_counters_and_events(tmp_path):
    store = ArtifactStore(tmp_path)
    obs.enable(reset=True)
    led = obs.enable_ledger()
    assert store.get("trace", "absent") is None
    store.put("trace", "k", {"payload": 42})
    assert store.get("trace", "k") == {"payload": 42}
    counters = dict(obs.recorder().registry.counters)
    assert counters == {"store.miss": 1, "store.put": 1, "store.hit": 1}
    kinds = [e["kind"] for e in led.events]
    assert kinds == ["store.miss", "store.put", "store.hit"]
    assert all(e["store"] == "store" for e in led.events)
    assert all(e["artifact"] == "trace" for e in led.events)
    assert store.stats == {"hit": 1, "miss": 1, "put": 1, "corrupt": 0,
                           "evicted": 0}


def test_corrupt_entry_recomputes_with_warning(tmp_path, caplog):
    store = ArtifactStore(tmp_path)
    store.put("trace", "k", {"payload": 42})
    store._path("trace", "k").write_bytes(b"\x80\x04 not a pickle")
    with caplog.at_level(logging.WARNING, logger="repro.store"):
        assert store.get("trace", "k") is None
    assert store.stats["corrupt"] == 1
    assert any("corrupt store entry" in r.getMessage()
               for r in caplog.records)


def test_memo_computes_once(tmp_path):
    store = ArtifactStore(tmp_path)
    calls = []

    def compute():
        calls.append(1)
        return {"v": 7}

    assert store.memo("module", "m", compute) == {"v": 7}
    assert store.memo("module", "m", compute) == {"v": 7}
    assert len(calls) == 1
    assert store.contains("module", "m")
    assert not store.contains("module", "absent")


def test_env_var_picks_default_root(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "envroot"))
    store = ArtifactStore()
    assert store.root == tmp_path / "envroot"


def test_kinds_live_in_separate_namespaces(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("trace", "k", "a trace")
    store.put("result", "k", "a result")
    assert store.get("trace", "k") == "a trace"
    assert store.get("result", "k") == "a result"


def test_put_is_pickled_payload(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("trace", "k", {"x": 1})
    raw = store._path("trace", "k").read_bytes()
    assert pickle.loads(raw) == {"x": 1}


# -- eviction / GC -------------------------------------------------------

def _put_sized(store, kind, key, size, mtime):
    """One artifact of a known on-disk size with a forced mtime."""
    import os
    store.put(kind, key, b"x" * size)
    os.utime(store._path(kind, key), (mtime, mtime))


def test_gc_evicts_least_recently_used_first(tmp_path):
    store = ArtifactStore(tmp_path)
    # Three same-size entries, oldest first; sizes are pickled so read
    # the real footprint back for the cap arithmetic.
    for i, key in enumerate(["old", "mid", "new"]):
        _put_sized(store, "result", key, 1000, 1000.0 + i)
    per_entry = store._path("result", "old").stat().st_size
    summary = store.gc(max_bytes=2 * per_entry)
    assert [e["key"] for e in summary["evicted_entries"]] == ["old"]
    assert not store.contains("result", "old")
    assert store.contains("result", "mid")
    assert store.contains("result", "new")
    assert summary["after_bytes"] == 2 * per_entry
    assert store.stats["evicted"] == 1


def test_gc_hit_refreshes_lru_order(tmp_path):
    store = ArtifactStore(tmp_path)
    for i, key in enumerate(["a", "b"]):
        _put_sized(store, "result", key, 1000, 1000.0 + i)
    # Using "a" makes "b" the LRU entry despite its later write.
    assert store.get("result", "a") is not None
    per_entry = store._path("result", "a").stat().st_size
    summary = store.gc(max_bytes=per_entry)
    assert [e["key"] for e in summary["evicted_entries"]] == ["b"]
    assert store.contains("result", "a")


def test_gc_pins_campaign_sources_and_traces(tmp_path):
    store = ArtifactStore(tmp_path)
    campaign = Campaign("demo", "imgkey", inputs=[[1, 2]])
    store.save_campaign(campaign)
    tkey = trace_key("imgkey", [1, 2])
    _put_sized(store, "source", "imgkey", 1000, 1000.0)
    _put_sized(store, "trace", tkey, 1000, 1001.0)
    _put_sized(store, "trace", "unpinned", 1000, 1002.0)
    _put_sized(store, "result", "recomputable", 1000, 1003.0)
    # A zero cap forces eviction of everything evictable — the
    # campaign's source and trace must survive even though they are
    # the oldest entries.
    summary = store.gc(max_bytes=0)
    assert store.contains("source", "imgkey")
    assert store.contains("trace", tkey)
    assert not store.contains("trace", "unpinned")
    assert not store.contains("result", "recomputable")
    assert summary["pinned_kept"] == 2
    assert summary["evicted"] == 2
    # Without pinning, campaign artifacts are fair game.
    store.gc(max_bytes=0, pin_campaigns=False)
    assert not store.contains("source", "imgkey")
    assert not store.contains("trace", tkey)


def test_gc_dry_run_deletes_nothing_and_counts_nothing(tmp_path):
    store = ArtifactStore(tmp_path)
    obs.enable(reset=True)
    led = obs.enable_ledger()
    _put_sized(store, "result", "k", 1000, 1000.0)
    summary = store.gc(max_bytes=0, dry_run=True)
    assert summary["dry_run"] is True
    assert [e["key"] for e in summary["evicted_entries"]] == ["k"]
    assert store.contains("result", "k")
    assert store.stats["evicted"] == 0
    assert "store.evicted" not in obs.recorder().registry.counters
    assert all(e["kind"] != "store.evicted" for e in led.events)


def test_gc_emits_evicted_counter_and_event(tmp_path):
    store = ArtifactStore(tmp_path)
    _put_sized(store, "result", "k", 1000, 1000.0)
    obs.enable(reset=True)
    led = obs.enable_ledger()
    store.gc(max_bytes=0)
    assert obs.recorder().registry.counters["store.evicted"] == 1
    evicted = [e for e in led.events if e["kind"] == "store.evicted"]
    assert len(evicted) == 1
    assert evicted[0]["artifact"] == "result"
    assert evicted[0]["key"] == "k"
    assert evicted[0]["bytes"] > 0


def test_gc_noop_under_cap(tmp_path):
    store = ArtifactStore(tmp_path)
    _put_sized(store, "result", "k", 100, 1000.0)
    summary = store.gc(max_bytes=1 << 20)
    assert summary["evicted"] == 0
    assert summary["before_bytes"] == summary["after_bytes"]
    assert store.contains("result", "k")


# -- campaigns -----------------------------------------------------------

def test_campaign_add_inputs_dedups_in_order():
    campaign = Campaign("demo", "imgkey")
    added = campaign.add_inputs([[1, 2], [3]])
    assert added == [[1, 2], [3]]
    added = campaign.add_inputs([[3], [4], [1, 2]])
    assert added == [[4]]
    assert campaign.inputs == [[1, 2], [3], [4]]


def test_campaign_round_trip(tmp_path):
    store = ArtifactStore(tmp_path)
    campaign = Campaign("demo", "imgkey", inputs=[[1, b"x"]], jobs=3,
                        coverage={"executed": 10})
    store.save_campaign(campaign)
    loaded = store.load_campaign("demo")
    assert loaded == campaign
    assert store.list_campaigns() == ["demo"]
    assert store.load_campaign("absent") is None


def test_campaign_name_is_sanitized(tmp_path):
    store = ArtifactStore(tmp_path)
    store.save_campaign(Campaign("a/b c", "imgkey"))
    path = store._campaign_path("a/b c")
    assert path.exists()
    assert "/" not in path.stem and " " not in path.stem


def test_corrupt_campaign_starts_fresh(tmp_path, caplog):
    store = ArtifactStore(tmp_path)
    store.save_campaign(Campaign("demo", "imgkey"))
    store._campaign_path("demo").write_text("{not json")
    with caplog.at_level(logging.WARNING, logger="repro.store"):
        assert store.load_campaign("demo") is None
    assert any("corrupt campaign" in r.getMessage()
               for r in caplog.records)
