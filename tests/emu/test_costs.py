"""Cost model: memory traffic and special instructions cost more."""

from repro.emu.costs import DEFAULT_COSTS
from repro.isa import EAX, ESP, Imm, Mem, ins


def cost(instr):
    return DEFAULT_COSTS.instruction_cost(instr)


def test_register_op_is_base_cost():
    assert cost(ins("mov", EAX, Imm(1))) == DEFAULT_COSTS.base


def test_memory_read_costs_more():
    reg_op = cost(ins("add", EAX, Imm(1)))
    mem_src = cost(ins("add", EAX, Mem(ESP, disp=4)))
    assert mem_src == reg_op + DEFAULT_COSTS.mem_read


def test_read_modify_write_costs_both():
    rmw = cost(ins("add", Mem(ESP, disp=4), Imm(1)))
    assert rmw == DEFAULT_COSTS.base + DEFAULT_COSTS.mem_read + \
        DEFAULT_COSTS.mem_write


def test_store_only_for_mov_to_memory():
    store = cost(ins("mov", Mem(ESP, disp=4), EAX))
    assert store == DEFAULT_COSTS.base + DEFAULT_COSTS.mem_write


def test_lea_is_not_memory_access():
    assert cost(ins("lea", EAX, Mem(ESP, disp=4))) == DEFAULT_COSTS.base


def test_division_is_expensive():
    assert cost(ins("idiv", EAX)) > cost(ins("imul", EAX, Imm(3)))


def test_stack_ops_include_memory():
    assert cost(ins("push", EAX)) == DEFAULT_COSTS.base + \
        DEFAULT_COSTS.mem_write
    assert cost(ins("pop", EAX)) == DEFAULT_COSTS.base + \
        DEFAULT_COSTS.mem_read


def test_call_includes_return_address_push():
    assert cost(ins("call", Imm(0x1000))) == DEFAULT_COSTS.base + \
        DEFAULT_COSTS.call + DEFAULT_COSTS.mem_write
