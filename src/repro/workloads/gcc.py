"""gcc stand-in: a tiny expression compiler — tokenizer, recursive-descent
parser emitting stack-machine bytecode, constant folder, and a bytecode
interpreter.  Deep recursion, switch dispatch, and string handling."""

from __future__ import annotations

from .base import Workload

SOURCE = r"""
char source[512];
char bytecode[2048];
int bc_len;
int pos;
int had_error;

int peek() { return source[pos] & 255; }

int next_token() {
    while (peek() == ' ') pos = pos + 1;
    return peek();
}

void emit(int op, int arg) {
    bytecode[bc_len] = (char)op;
    bytecode[bc_len + 1] = (char)(arg & 255);
    bytecode[bc_len + 2] = (char)((arg >> 8) & 255);
    bc_len = bc_len + 3;
}

void parse_expr();

void parse_primary() {
    int t = next_token();
    if (t >= '0' && t <= '9') {
        int value = 0;
        while (peek() >= '0' && peek() <= '9') {
            value = value * 10 + (peek() - '0');
            pos = pos + 1;
        }
        emit(1, value);            /* PUSH */
    } else if (t == '(') {
        pos = pos + 1;
        parse_expr();
        if (next_token() == ')') pos = pos + 1;
        else had_error = 1;
    } else if (t == '-') {
        pos = pos + 1;
        parse_primary();
        emit(5, 0);                /* NEG */
    } else {
        had_error = 1;
        pos = pos + 1;
    }
}

void parse_term() {
    parse_primary();
    while (1) {
        int t = next_token();
        if (t == '*') { pos = pos + 1; parse_primary(); emit(4, 0); }
        else if (t == '/') { pos = pos + 1; parse_primary(); emit(6, 0); }
        else if (t == '%') { pos = pos + 1; parse_primary(); emit(7, 0); }
        else break;
    }
}

void parse_expr() {
    parse_term();
    while (1) {
        int t = next_token();
        if (t == '+') { pos = pos + 1; parse_term(); emit(2, 0); }
        else if (t == '-') { pos = pos + 1; parse_term(); emit(3, 0); }
        else break;
    }
}

int fold_constants() {
    /* Peephole over bytecode: PUSH a, PUSH b, binop -> PUSH (a op b). */
    int folded = 0;
    int changed = 1;
    while (changed) {
        changed = 0;
        int i = 0;
        while (i + 6 < bc_len) {
            int op1 = bytecode[i] & 255;
            int op2 = bytecode[i + 3] & 255;
            int op3 = bytecode[i + 6] & 255;
            if (op1 == 1 && op2 == 1 && (op3 == 2 || op3 == 3
                                         || op3 == 4)) {
                int a = (bytecode[i + 1] & 255)
                      | ((bytecode[i + 2] & 255) << 8);
                int b = (bytecode[i + 4] & 255)
                      | ((bytecode[i + 5] & 255) << 8);
                int r;
                if (op3 == 2) r = a + b;
                else if (op3 == 3) r = a - b;
                else r = a * b;
                r = r & 32767;
                bytecode[i] = 1;
                bytecode[i + 1] = (char)(r & 255);
                bytecode[i + 2] = (char)((r >> 8) & 255);
                int j = i + 3;
                while (j + 6 < bc_len + 6) {
                    bytecode[j] = bytecode[j + 6];
                    j = j + 1;
                }
                bc_len = bc_len - 6;
                folded = folded + 1;
                changed = 1;
            } else {
                i = i + 3;
            }
        }
    }
    return folded;
}

int run_bytecode() {
    int stack[64];
    int sp = 0;
    int i = 0;
    while (i < bc_len) {
        int op = bytecode[i] & 255;
        int arg = (bytecode[i + 1] & 255) | ((bytecode[i + 2] & 255) << 8);
        switch (op) {
        case 1: stack[sp] = arg; sp = sp + 1; break;
        case 2: stack[sp - 2] = stack[sp - 2] + stack[sp - 1];
                sp = sp - 1; break;
        case 3: stack[sp - 2] = stack[sp - 2] - stack[sp - 1];
                sp = sp - 1; break;
        case 4: stack[sp - 2] = stack[sp - 2] * stack[sp - 1];
                sp = sp - 1; break;
        case 5: stack[sp - 1] = -stack[sp - 1]; break;
        case 6: if (stack[sp - 1])
                    stack[sp - 2] = stack[sp - 2] / stack[sp - 1];
                sp = sp - 1; break;
        case 7: if (stack[sp - 1])
                    stack[sp - 2] = stack[sp - 2] % stack[sp - 1];
                sp = sp - 1; break;
        default: return -999999;
        }
        i = i + 3;
    }
    if (sp != 1) return -999998;
    return stack[0];
}

int main() {
    int total = 0;
    int exprs = 0;
    while (1) {
        int n = read_buf(source, 511);
        if (n <= 0) break;
        source[n] = (char)0;
        pos = 0; bc_len = 0; had_error = 0;
        parse_expr();
        int before = bc_len;
        int folded = fold_constants();
        int value = run_bytecode();
        exprs = exprs + 1;
        printf("expr %d: %d ops -> %d ops (folded %d) = %d%s\n",
               exprs, before / 3, bc_len / 3, folded, value,
               had_error ? " [errors]" : "");
        total = total + value;
    }
    printf("compiled %d expressions, total %d\n", exprs, total);
    return 0;
}
"""

_EXPRESSIONS = (
    b"1 + 2 * 3 - 4",
    b"(10 + 20) * (3 - 1) / 4",
    b"-5 * (7 + 3) + 100 % 7",
    b"((1+2)*(3+4)-(5-6))*2 + 9 / 3",
    b"8 * 8 * 8 - 7 * 7 * 7 + 6 * 6",
    b"(2+3)*(4+5)*(6+7) % 1000 - 42",
    b"1+2+3+4+5+6+7+8+9+10 * (11 - 9)",
)

WORKLOAD = Workload(
    name="gcc",
    source=SOURCE,
    ref_inputs=(tuple(_EXPRESSIONS),),
    description="toy compiler: parse, emit bytecode, fold, execute",
)
