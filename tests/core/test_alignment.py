"""Alignment capture through `and` derives (paper §4.2.2: "for and
instructions, we capture the alignment factor in the associated
StackVar")."""

from types import SimpleNamespace

from repro.core.instrument import _probe
from repro.core.runtime import TracingRuntime


def test_and_derive_records_alignment():
    rt = TracingRuntime()
    fr = SimpleNamespace(frame_id=1,
                         function=SimpleNamespace(name="f"))
    rt.handle(fr, _probe("fnenter", [], {"func": "f",
                                         "param_vids": []}), [1000])
    rt.handle(fr, _probe("stackref", [], {
        "ref_id": 0, "offset": -64, "vid": 10, "is_sp0": False}), [936])
    # Align-down to 16: and ptr, ~15.
    rt.handle(fr, _probe("derive", [], {
        "op": "and", "const": 0xFFFFFFF0, "result_vid": 11,
        "base_vid": 10}), [928, 936])
    assert rt.stack_vars[0].align >= 16
    # The aligned pointer still tracks the same variable.
    rt.handle(fr, _probe("store", [], {
        "size": 4, "addr_vid": 11, "value_vid": -1}), [928, 1])
    assert rt.stack_vars[0].defined


def test_alignment_survives_into_layout():
    from repro.core.layout import build_frame_layout
    from repro.core.runtime import StackVar
    rt = TracingRuntime()
    var = StackVar(0, "f", -64, 0, 32, align=16)
    rt.stack_vars[0] = var
    layout = build_frame_layout("f", {0: (None, -64)}, rt)
    assert layout.variables[0].align == 16
