"""The MiniC compiler (frontend + personalities + driver)."""

from .ast_nodes import TranslationUnit
from .driver import compile_source, compile_to_ir
from .frontend import LIBC_PROTOS, Frontend, lower_to_ir
from .lexer import Token, tokenize
from .parser import Parser, parse
from .personalities import PAPER_CONFIGS, Personality, personality

__all__ = [
    "Frontend", "LIBC_PROTOS", "PAPER_CONFIGS", "Parser", "Personality",
    "Token", "TranslationUnit", "compile_source", "compile_to_ir",
    "lower_to_ir", "parse", "personality", "tokenize",
]
