"""MiniC language semantics, executed end-to-end on the machine.

Each test compiles a small program at several personalities and checks
the observable output — the compiler's correctness contract.
"""

import pytest

from repro.cc import compile_source
from repro.emu import run_binary

PERSONALITIES = [("gcc12", "0"), ("gcc12", "3"), ("gcc44", "3")]


def run_all(src, inputs=None):
    outputs = set()
    result = None
    for comp, lvl in PERSONALITIES:
        image = compile_source(src, comp, lvl, "t")
        result = run_binary(image, list(inputs or []))
        outputs.add((result.stdout, result.exit_code))
    assert len(outputs) == 1, outputs
    return result


def test_arithmetic_operators():
    r = run_all(r'''
int main() {
    printf("%d %d %d %d %d\n", 7 + 3, 7 - 3, 7 * 3, 7 / 3, 7 % 3);
    printf("%d %d %d\n", -7 / 3, -7 % 3, -(5));
    printf("%d %d %d %d\n", 1 << 4, 256 >> 2, -8 >> 1, 6 & 3);
    printf("%d %d %d\n", 6 | 3, 6 ^ 3, ~0);
    return 0;
}''')
    assert r.stdout == (b"10 4 21 2 1\n-2 -1 -5\n16 64 -4 2\n7 5 -1\n")


def test_comparisons_and_logic():
    r = run_all(r'''
int side(int *c) { *c = *c + 1; return 1; }
int main() {
    int calls = 0;
    printf("%d%d%d%d%d%d\n", 1 < 2, 2 <= 2, 3 > 4, 4 >= 4, 5 == 5,
           5 != 5);
    int v = 0 && side(&calls);
    int w = 1 || side(&calls);
    printf("%d %d calls=%d\n", v, w, calls);
    printf("%d\n", !0 + !7);
    return 0;
}''')
    assert r.stdout == b"110110\n0 1 calls=0\n1\n"


def test_unsigned_comparison():
    r = run_all(r'''
int main() {
    unsigned int big = 0x80000000;
    unsigned int one = 1;
    printf("%d %d\n", big > one, (int)big > (int)one);
    return 0;
}''')
    assert r.stdout == b"1 0\n"


def test_char_signedness_and_promotion():
    r = run_all(r'''
int main() {
    char c = 200;       /* wraps to -56 */
    unsigned char u = 200;
    printf("%d %d\n", c, u);
    short s = 40000;    /* wraps negative */
    printf("%d\n", s < 0);
    return 0;
}''')
    assert r.stdout == b"-56 200\n1\n"


def test_pointer_arithmetic_and_difference():
    r = run_all(r'''
int main() {
    int a[5];
    int i;
    for (i = 0; i < 5; i++) a[i] = i * i;
    int *p = a + 1;
    int *q = &a[4];
    printf("%d %d %d\n", *p, *(q - 2), q - p);
    p += 2;
    printf("%d\n", *p);
    return 0;
}''')
    assert r.stdout == b"1 4 3\n9\n"


def test_struct_members_and_copy():
    r = run_all(r'''
struct inner { int a; char c; };
struct outer { struct inner in; int arr[2]; };
int main() {
    struct outer o;
    o.in.a = 5; o.in.c = 'x';
    o.arr[0] = 10; o.arr[1] = 20;
    struct outer copy = o;
    copy.in.a = 99;
    printf("%d %c %d %d %d\n", o.in.a, copy.in.c, copy.arr[1],
           copy.in.a, o.arr[0]);
    struct outer *p = &copy;
    p->arr[0] = p->in.a + 1;
    printf("%d\n", copy.arr[0]);
    return 0;
}''')
    assert r.stdout == b"5 x 20 99 10\n100\n"


def test_increments_pre_and_post():
    r = run_all(r'''
int main() {
    int i = 5;
    printf("%d %d %d\n", i++, ++i, i--);
    int a[3];
    a[0] = 1; a[1] = 2; a[2] = 3;
    int *p = a;
    printf("%d %d %d\n", *p++, *p, i);
    return 0;
}''')
    assert r.stdout == b"5 7 7\n1 2 6\n"


def test_compound_assignment():
    r = run_all(r'''
int main() {
    int x = 10;
    x += 5; x -= 3; x *= 2; x /= 4; x %= 4;
    printf("%d\n", x);
    x = 3;
    x <<= 2; x |= 1; x ^= 2; x &= 14;
    printf("%d\n", x);
    return 0;
}''')
    assert r.stdout == b"2\n14\n"


def test_globals_and_statics():
    r = run_all(r'''
int counter = 100;
int table[4] = {1, 2, 3};
int bump() {
    static int calls = 0;
    calls = calls + 1;
    return calls;
}
int main() {
    counter += table[1];
    printf("%d %d %d %d\n", counter, table[3], bump(), bump());
    return 0;
}''')
    assert r.stdout == b"102 0 1 2\n"


def test_do_while_break_continue():
    r = run_all(r'''
int main() {
    int i = 0;
    int total = 0;
    do { i++; } while (i < 3);
    printf("%d\n", i);
    for (i = 0; i < 10; i++) {
        if (i == 2) continue;
        if (i == 5) break;
        total += i;
    }
    printf("%d\n", total);
    while (1) { break; }
    return 0;
}''')
    assert r.stdout == b"3\n8\n"


def test_recursion_mutual():
    r = run_all(r'''
int is_odd(int n);
int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
int main() {
    printf("%d %d\n", is_even(10), is_odd(7));
    return 0;
}''')
    assert r.stdout == b"1 1\n"


def test_function_pointers_in_tables():
    r = run_all(r'''
int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int main() {
    int (*ops[2])(int, int);
    ops[0] = add;
    ops[1] = sub;
    int i;
    for (i = 0; i < 2; i++) printf("%d ", ops[i](10, 4));
    printf("\n");
    return 0;
}''')
    assert r.stdout == b"14 6 \n"


def test_ternary_and_comma():
    r = run_all(r'''
int main() {
    int a = 3, b = 9;
    printf("%d %d\n", a > b ? a : b, (a = 5, a + 1));
    return 0;
}''')
    assert r.stdout == b"9 6\n"


def test_string_builtins_roundtrip():
    r = run_all(r'''
int main() {
    char buf[64];
    strcpy(buf, "hello");
    strcat(buf, " world");
    printf("%s %d %d\n", buf, strlen(buf), strcmp(buf, "hello world"));
    char num[16];
    sprintf(num, "%d", 321);
    printf("%d\n", atoi(num) + 1);
    return 0;
}''')
    assert r.stdout == b"hello world 11 0\n322\n"


def test_switch_fallthrough_and_default():
    r = run_all(r'''
int label(int v) {
    int r = 0;
    switch (v) {
    case 1: r += 1;
    case 2: r += 2; break;
    case 7: r += 7; break;
    default: r = -1;
    }
    return r;
}
int main() {
    printf("%d %d %d %d\n", label(1), label(2), label(7), label(9));
    return 0;
}''')
    assert r.stdout == b"3 2 7 -1\n"


def test_input_builtins():
    r = run_all(r'''
int main() {
    int a = read_int();
    char buf[8];
    int n = read_buf(buf, 8);
    printf("%d %d %c\n", a, n, buf[0]);
    return 0;
}''', inputs=[12, b"xy"])
    assert r.stdout == b"12 2 x\n"


def test_heap_allocation():
    r = run_all(r'''
int main() {
    int *p = malloc(4 * sizeof(int));
    int i;
    for (i = 0; i < 4; i++) p[i] = i + 1;
    int *q = calloc(2, sizeof(int));
    printf("%d %d\n", p[3], q[1]);
    free(p);
    return 0;
}''')
    assert r.stdout == b"4 0\n"


def test_exit_code_from_main():
    r = run_all("int main() { return 17; }")
    assert r.exit_code == 17


def test_division_errors_rejected_at_compile_time():
    from repro.errors import CompileError
    with pytest.raises(CompileError):
        compile_source(
            "int main() { unsigned int a = 4; return a / 2; }",
            "gcc12", "3", "t")
