"""Dynamic control-flow tracing (the S2E role in the paper's Figure 4).

A :class:`Tracer` attaches to the machine emulator and records, for a set
of inputs, every control transfer and every executed instruction address.
:class:`TraceSet` merges traces across inputs (the paper's "Merge CFGs"
step), and is the sole source of control-flow information for the lifter —
the dynamic-only discipline that lets WYTIWYG avoid heuristic CFG
recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..binary.image import BinaryImage
from .blocks import shared_block_cache
from .costs import DEFAULT_COSTS, CostModel
from .machine import Machine, RunResult, _HANDLERS


@dataclass(frozen=True)
class Transfer:
    """One observed control transfer."""

    src: int
    dst: int
    kind: str  # "call" | "ret" | "jump" | "fallthrough" | "import"


class _Sink:
    """The Machine's ControlSink, built from bound recorder callables.

    The machine fetches ``.transfer`` and ``.executed`` and calls them
    directly, so there is no adapter frame between the emulator and the
    recording sets.
    """

    __slots__ = ("transfer", "executed")

    def __init__(self, transfer, executed):
        self.transfer = transfer
        self.executed = executed


class Tracer:
    """Collects transfers and coverage during one or more executions."""

    def __init__(self) -> None:
        self.transfers: set[Transfer] = set()
        self.executed: set[int] = set()
        #: ControlSink view: ``executed`` is the coverage set's own
        #: ``add`` method (an attribute named ``executed`` would collide
        #: with the set, so the sink is a separate two-slot object).
        self.sink = _Sink(self.transfer, self.executed.add)

    def transfer(self, src: int, dst: int, kind: str) -> None:
        self.transfers.add(Transfer(src, dst, kind))


@dataclass
class TraceSet:
    """Merged dynamic information for one binary across traced inputs."""

    image: BinaryImage
    transfers: set[Transfer] = field(default_factory=set)
    executed: set[int] = field(default_factory=set)
    results: list[RunResult] = field(default_factory=list)
    inputs: list[list[int | bytes]] = field(default_factory=list)

    def merge(self, tracer: Tracer, result: RunResult,
              input_items: list[int | bytes]) -> None:
        self.transfers |= tracer.transfers
        self.executed |= tracer.executed
        self.results.append(result)
        self.inputs.append(list(input_items))

    def absorb(self, transfers: set[Transfer], executed: set[int],
               result: RunResult,
               input_items: list[int | bytes]) -> None:
        """Fold one previously recorded input run in.

        The per-input counterpart of :meth:`merge` for trace records
        loaded from the artifact store: absorbing each input's record
        in request order reconstructs exactly the TraceSet that
        :func:`trace_binary` would build by re-executing every input.
        """
        self.transfers |= transfers
        self.executed |= executed
        self.results.append(result)
        self.inputs.append(list(input_items))

    @property
    def call_targets(self) -> set[int]:
        return {t.dst for t in self.transfers if t.kind == "call"}

    @property
    def jump_edges(self) -> set[tuple[int, int]]:
        return {(t.src, t.dst) for t in self.transfers
                if t.kind in ("jump", "fallthrough")}


def trace_binary(image: BinaryImage,
                 inputs: list[list[int | bytes]],
                 costs: CostModel = DEFAULT_COSTS,
                 max_instructions: int = 80_000_000,
                 use_blocks: bool = True) -> TraceSet:
    """Run ``image`` on every input, merging traces (incremental lifting).

    This is the paper's initial tracing phase: each input contributes
    coverage, and the merged trace set drives lifting.  All per-input
    machines share one decoded/compiled block cache, so the binary is
    decoded once no matter how many inputs are traced.
    """
    traces = TraceSet(image)
    blocks = shared_block_cache(image, costs, _HANDLERS) \
        if use_blocks else None
    for input_items in inputs:
        tracer = Tracer()
        machine = Machine(image, list(input_items), costs=costs,
                          max_instructions=max_instructions,
                          trace_sink=tracer.sink, use_blocks=use_blocks,
                          blocks=blocks)
        result = machine.run()
        traces.merge(tracer, result, input_items)
    return traces
