"""The tracing runtime in isolation: StackVar bounds, PointerInfo flow,
links, address map, constraints (paper §4.2)."""

from types import SimpleNamespace

from repro.core.instrument import _probe
from repro.core.runtime import PointerInfo, StackVar, \
    TracingRuntime


def frame(fid=1, fname="f"):
    return SimpleNamespace(frame_id=fid,
                           function=SimpleNamespace(name=fname))


def fire(rt, fr, name, meta, args=()):
    rt.handle(fr, _probe(name, [], meta), list(args))


def enter(rt, fr, sp0=1000, params=(0,)):
    fire(rt, fr, "fnenter", {"func": fr.function.name,
                             "param_vids": list(params)}, [sp0])


def test_stackvar_deferred_bounds():
    var = StackVar(0, "f", -16)
    assert not var.defined
    var.touch(4, 4)
    assert (var.low, var.high) == (4, 8)
    var.touch(0, 2)
    assert (var.low, var.high) == (0, 8)


def test_stackref_creates_var_and_info():
    rt = TracingRuntime()
    fr = frame()
    enter(rt, fr)
    fire(rt, fr, "stackref", {"ref_id": 5, "offset": -16, "vid": 10,
                              "is_sp0": False}, [984])
    assert rt.stack_vars[5].sp0_offset == -16
    assert not rt.stack_vars[5].defined  # no dereference yet


def test_derive_and_deref_updates_bounds():
    rt = TracingRuntime()
    fr = frame()
    enter(rt, fr)
    fire(rt, fr, "stackref", {"ref_id": 1, "offset": -32, "vid": 10,
                              "is_sp0": False}, [968])
    fire(rt, fr, "derive", {"op": "add", "const": 8, "result_vid": 11,
                            "base_vid": 10}, [976, 968])
    # Derivation alone must not define bounds (false derives, §4.2.3).
    assert not rt.stack_vars[1].defined
    fire(rt, fr, "load", {"size": 4, "addr_vid": 11, "result_vid": 12},
         [976, 0])
    assert (rt.stack_vars[1].low, rt.stack_vars[1].high) == (8, 12)


def test_out_of_bounds_base_pointer_deferred():
    # Base pointer one past the array (Figure 3): the first deref is at
    # a negative offset.
    rt = TracingRuntime()
    fr = frame()
    enter(rt, fr)
    fire(rt, fr, "stackref", {"ref_id": 2, "offset": -8, "vid": 10,
                              "is_sp0": False}, [992])
    fire(rt, fr, "derive", {"op": "sub", "const": 4, "result_vid": 11,
                            "base_vid": 10}, [988, 992])
    fire(rt, fr, "store", {"size": 4, "addr_vid": 11, "value_vid": -1},
         [988, 7])
    assert (rt.stack_vars[2].low, rt.stack_vars[2].high) == (-4, 0)


def test_derive2_with_runtime_values():
    rt = TracingRuntime()
    fr = frame()
    enter(rt, fr)
    fire(rt, fr, "stackref", {"ref_id": 3, "offset": -64, "vid": 10,
                              "is_sp0": False}, [936])
    fire(rt, fr, "derive2", {"op": "add", "result_vid": 11,
                             "lhs_vid": 10, "rhs_vid": 99},
         [956, 936, 20])
    fire(rt, fr, "load", {"size": 4, "addr_vid": 11, "result_vid": 12},
         [956, 0])
    assert (rt.stack_vars[3].low, rt.stack_vars[3].high) == (20, 24)


def test_pointer_subtraction_links_vars():
    rt = TracingRuntime()
    fr = frame()
    enter(rt, fr)
    for rid, off, vid, val in ((1, -32, 10, 968), (2, -16, 11, 984)):
        fire(rt, fr, "stackref", {"ref_id": rid, "offset": off,
                                  "vid": vid, "is_sp0": False}, [val])
    fire(rt, fr, "derive2", {"op": "sub", "result_vid": 12,
                             "lhs_vid": 11, "rhs_vid": 10},
         [16, 984, 968])
    assert frozenset((1, 2)) in rt.links


def test_comparison_links_vars():
    rt = TracingRuntime()
    fr = frame()
    enter(rt, fr)
    for rid, off, vid, val in ((1, -32, 10, 968), (2, -16, 11, 984)):
        fire(rt, fr, "stackref", {"ref_id": rid, "offset": off,
                                  "vid": vid, "is_sp0": False}, [val])
    fire(rt, fr, "link", {"lhs_vid": 10, "rhs_vid": 11}, [968, 984])
    assert frozenset((1, 2)) in rt.links


def test_address_map_store_load_round_trip():
    rt = TracingRuntime()
    fr = frame()
    enter(rt, fr)
    fire(rt, fr, "stackref", {"ref_id": 1, "offset": -32, "vid": 10,
                              "is_sp0": False}, [968])
    # Spill the pointer to memory, reload it elsewhere.
    fire(rt, fr, "store", {"size": 4, "addr_vid": -1, "value_vid": 10},
         [2000, 968])
    fire(rt, fr, "load", {"size": 4, "addr_vid": -1, "result_vid": 20},
         [2000, 968])
    fire(rt, fr, "load", {"size": 4, "addr_vid": 20, "result_vid": 21},
         [968, 0])
    assert rt.stack_vars[1].defined  # deref through the reloaded pointer


def test_overwrite_clears_address_map():
    rt = TracingRuntime()
    fr = frame()
    enter(rt, fr)
    fire(rt, fr, "stackref", {"ref_id": 1, "offset": -32, "vid": 10,
                              "is_sp0": False}, [968])
    fire(rt, fr, "store", {"size": 4, "addr_vid": -1, "value_vid": 10},
         [2000, 968])
    fire(rt, fr, "store", {"size": 4, "addr_vid": -1, "value_vid": -1},
         [2000, 42])  # overwrite with non-pointer
    fire(rt, fr, "load", {"size": 4, "addr_vid": -1, "result_vid": 20},
         [2000, 42])
    fr2_info = rt._frames[fr.frame_id].infos[20]
    assert fr2_info is None


def test_argument_area_recording():
    rt = TracingRuntime()
    caller = frame(1, "caller")
    callee = frame(2, "callee")
    enter(rt, caller, sp0=2000)
    fire(rt, caller, "callargs", {"callsite_id": 7, "arg_vids": [50]},
         [])
    fire(rt, callee, "fnenter", {"func": "callee",
                                 "param_vids": [0]}, [996])
    # Callee touches [sp0+4] and [sp0+8]: two argument slots.
    fire(rt, callee, "stackref", {"ref_id": 9, "offset": 4, "vid": 10,
                                  "is_sp0": False}, [1000])
    fire(rt, callee, "load", {"size": 4, "addr_vid": 10,
                              "result_vid": 11}, [1000, 0])
    fire(rt, callee, "stackref", {"ref_id": 10, "offset": 8, "vid": 12,
                                  "is_sp0": False}, [1004])
    fire(rt, callee, "load", {"size": 4, "addr_vid": 12,
                              "result_vid": 13}, [1004, 0])
    access = rt.arg_accesses[7]
    assert access.callees == {"callee"}
    assert (access.low, access.high) == (0, 8)
    assert not access.walked


def test_walked_argument_area():
    rt = TracingRuntime()
    caller = frame(1, "caller")
    callee = frame(2, "callee")
    enter(rt, caller, sp0=2000)
    fire(rt, caller, "callargs", {"callsite_id": 3, "arg_vids": []}, [])
    fire(rt, callee, "fnenter", {"func": "callee", "param_vids": []},
         [996])
    fire(rt, callee, "stackref", {"ref_id": 9, "offset": 4, "vid": 10,
                                  "is_sp0": False}, [1000])
    fire(rt, callee, "derive", {"op": "add", "const": 4,
                                "result_vid": 11, "base_vid": 10},
         [1004, 1000])
    assert rt.arg_accesses[3].walked


def test_false_derive_through_or_is_harmless():
    rt = TracingRuntime()
    fr = frame()
    enter(rt, fr)
    fire(rt, fr, "stackref", {"ref_id": 1, "offset": -32, "vid": 10,
                              "is_sp0": False}, [968])
    # Sub-register merge: and-mask then or with a fresh byte.
    fire(rt, fr, "derive", {"op": "and", "const": 0xFFFFFF00,
                            "result_vid": 11, "base_vid": 10},
         [968 & 0xFFFFFF00, 968])
    fire(rt, fr, "derive2", {"op": "or", "result_vid": 12,
                             "lhs_vid": 11, "rhs_vid": 99},
         [0x12345678, 968 & 0xFFFFFF00, 0x78])
    # The result carries a (stale) association, but no deref happens, so
    # bounds stay undefined.
    assert not rt.stack_vars[1].defined


def test_extcall_object_size_constraint():
    rt = TracingRuntime()
    fr = frame()
    enter(rt, fr)
    fire(rt, fr, "stackref", {"ref_id": 1, "offset": -64, "vid": 10,
                              "is_sp0": False}, [936])
    # read_buf(ptr, 48): ObjectSize(arg0, arg1).
    fire(rt, fr, "extcall", {"name": "read_buf", "arg_vids": [10, -1],
                             "result_vid": 20}, [936, 48, 48])
    assert (rt.stack_vars[1].low, rt.stack_vars[1].high) == (0, 48)


def test_extcall_derive_constraint():
    rt = TracingRuntime()
    fr = frame()
    enter(rt, fr)
    fire(rt, fr, "stackref", {"ref_id": 1, "offset": -64, "vid": 10,
                              "is_sp0": False}, [936])
    # memset returns its first argument.
    fire(rt, fr, "extcall",
         {"name": "memset", "arg_vids": [10, -1, -1],
          "result_vid": 20}, [936, 0, 16, 936])
    info = rt._frames[fr.frame_id].infos[20]
    assert isinstance(info, PointerInfo)
    assert info.var is rt.stack_vars[1]
    assert (rt.stack_vars[1].low, rt.stack_vars[1].high) == (0, 16)


def test_recursion_distinct_frames_same_var():
    rt = TracingRuntime()
    outer = frame(1, "f")
    inner = frame(2, "f")
    enter(rt, outer, sp0=2000)
    fire(rt, outer, "stackref", {"ref_id": 1, "offset": -16, "vid": 10,
                                 "is_sp0": False}, [1984])
    fire(rt, outer, "callargs", {"callsite_id": 0, "arg_vids": []}, [])
    fire(rt, inner, "fnenter", {"func": "f", "param_vids": []}, [1900])
    fire(rt, inner, "stackref", {"ref_id": 1, "offset": -16, "vid": 10,
                                 "is_sp0": False}, [1884])
    fire(rt, inner, "store", {"size": 4, "addr_vid": 10,
                              "value_vid": -1}, [1884, 1])
    fire(rt, inner, "fnexit", {"ret_vids": []}, [])
    # Same static StackVar accumulated bounds from the inner activation.
    assert rt.stack_vars[1].defined
    # The outer frame's vid metadata still points at the same var.
    assert rt._frames[outer.frame_id].infos[10].var is rt.stack_vars[1]
