"""Service benches: the artifact store and the recompilation daemon.

Runs as the sixth ``tools/bench.sh`` pass and lands in
``BENCH_serve.json``.  Two scenarios, both through the real daemon
(an in-thread :class:`~repro.serve.RecompileServer` on a Unix socket):

* **Warm campaign vs cold one-shots** — a four-submission campaign
  replayed against a warm store is served entirely from result hits
  and must be at least 3x faster than the same work as cold one-shot
  ``wytiwyg_recompile`` calls, with byte-identical artifacts.
* **Incremental input addition** — adding one input to a warm
  campaign re-traces only that input (store hits for the rest),
  reuses unmoved functions via the optimizer memo, and must beat the
  cold one-shot over the full input set.
"""

import os
import shutil
import tempfile
import threading
import time

import pytest

from repro import compile_source, obs, wytiwyg_recompile
from repro.opt import clear_memo
from repro.recompile import clear_lower_cache
from repro.serve import RecompileServer, ServeClient
from repro.store import ArtifactStore

pytestmark = pytest.mark.bench

SOURCE = r"""
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int gcd(int a, int b) { while (b) { int t = a % b; a = b; b = t; } return a; }
int rev(int x) { int r = 0; while (x) { r = r * 10 + x % 10; x /= 10; } return r; }
int weight(int v) { int w = 0; while (v) { w += v % 10; v /= 10; } return w; }
int mix(int seed, int rounds) {
    int acc = seed;
    for (int i = 0; i < rounds; i++) {
        acc = acc * 31 + i;
        if (acc > 1000000) acc = acc % 1000003;
    }
    return acc;
}
int score(int kind, int value) {
    if (kind == 0) return value * 2;
    if (kind == 1) return value + 100;
    return -value;
}
int dispatch(int kind, int value) {
    switch (kind) {
    case 0: return score(0, value);
    case 1: return score(1, value) + weight(value);
    case 2: return fib(value % 20);
    case 3: return gcd(value, 252);
    case 4: return rev(value);
    default: return mix(value, 25);
    }
}
int main() {
    int kind = read_int();
    int value = read_int();
    printf("out=%d\n", dispatch(kind, value));
    return 0;
}
"""

#: Each submission adds one input run to the campaign.
SUBMISSIONS = [[0, 7]], [[1, 93]], [[2, 9]], [[3, 84]]

#: A wider traced base for the input-addition bench: re-tracing these
#: is the bulk of what a cold one-shot pays and a warm request skips.
BASE_INPUTS = [[0, 7], [1, 93], [2, 18], [2, 16], [3, 84], [5, 12345]]


def _cold_oneshot(image, runs):
    """One-shot recompile exactly as ``repro recompile`` would run it:
    empty process caches, no store."""
    clear_memo()
    clear_lower_cache()
    return wytiwyg_recompile(image, [list(r) for r in runs])


class _Daemon:
    def __init__(self, store_root):
        self.sockdir = tempfile.mkdtemp(prefix="repro-bench-")
        sock = os.path.join(self.sockdir, "d.sock")
        self.server = RecompileServer(sock, store=ArtifactStore(store_root))
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)
        self.thread.start()
        deadline = time.monotonic() + 10
        while not os.path.exists(sock):
            if time.monotonic() > deadline:
                raise RuntimeError("daemon never bound its socket")
            time.sleep(0.02)
        self.client = ServeClient(sock, timeout=600)

    def close(self):
        try:
            self.client.shutdown()
        except Exception:
            pass
        self.thread.join(timeout=10)
        self.server.close()
        shutil.rmtree(self.sockdir, ignore_errors=True)


def test_bench_serve_warm_campaign_vs_cold_oneshots(benchmark, tmp_path):
    """A replayed campaign is all result hits: >= 3x over cold."""
    image = compile_source(SOURCE, "gcc12", "3", "servebench")
    daemon = _Daemon(tmp_path / "store")
    client = daemon.client
    try:
        def run_campaign():
            last = None
            for runs in SUBMISSIONS:
                last = client.submit(image_json=image.to_json(),
                                     inputs=[list(r) for r in runs],
                                     campaign="bench",
                                     return_artifact=True)
            return last

        first = run_campaign()  # populates store + campaign state
        assert first["served"] in ("cold", "incremental")

        start = time.perf_counter()
        warm = benchmark.pedantic(run_campaign, rounds=1, iterations=1)
        warm_s = time.perf_counter() - start
        assert warm["served"] == "store"
        assert warm["stats"]["traces_recorded"] == 0

        # The same work as N cold one-shot recompiles over the
        # accumulated input sets the campaign jobs actually ran.
        accumulated = []
        cold_s = 0.0
        cold_final = None
        for runs in SUBMISSIONS:
            accumulated.extend(runs)
            start = time.perf_counter()
            cold_final = _cold_oneshot(image, accumulated)
            cold_s += time.perf_counter() - start

        assert warm["artifact"] == cold_final.recovered.to_json()
        speedup = cold_s / warm_s
        benchmark.extra_info["submissions"] = len(SUBMISSIONS)
        benchmark.extra_info["cold_seconds"] = cold_s
        benchmark.extra_info["warm_seconds"] = warm_s
        benchmark.extra_info["warm_speedup"] = speedup
        assert speedup >= 3.0, (
            f"warm campaign speedup {speedup:.2f}x < 3x "
            f"(cold {cold_s:.2f}s, warm {warm_s:.3f}s)")
    finally:
        daemon.close()


def test_bench_serve_incremental_input_addition(benchmark, tmp_path):
    """Adding one input re-traces one input and re-refines only moved
    functions; the request beats a cold one-shot over the full set."""
    image = compile_source(SOURCE, "gcc12", "3", "servebench")
    daemon = _Daemon(tmp_path / "store")
    client = daemon.client
    base = [list(r) for r in BASE_INPUTS]
    counted = [4, 921]   # first addition: newly covers rev()
    timed = [4, 15243]   # second addition: rev() again, no new coverage
    try:
        client.submit(image_json=image.to_json(), inputs=base,
                      campaign="bench")  # warm store + process caches

        # First addition, instrumented: assert what got reused.
        obs.enable(reset=True)
        try:
            checked = client.submit(inputs=[counted], campaign="bench")
            counters = dict(obs.recorder().registry.counters)
        finally:
            obs.disable()
        assert checked["served"] == "incremental"
        assert checked["stats"]["traces_recorded"] == 1
        assert checked["stats"]["traces_reused"] == len(base)
        assert counters.get("store.hit", 0) >= len(base)
        reused_functions = (counters.get("opt.manager.skipped", 0)
                            + counters.get("opt.manager.memo_hits", 0))
        assert reused_functions > 0, "no function-level refinement reuse"

        # Second addition, uninstrumented: the timing comparison.
        start = time.perf_counter()
        warm = benchmark.pedantic(
            lambda: client.submit(inputs=[timed], campaign="bench",
                                  return_artifact=True),
            rounds=1, iterations=1)
        warm_s = time.perf_counter() - start
        assert warm["served"] == "incremental"
        assert warm["stats"]["traces_recorded"] == 1
        assert warm["stats"]["traces_reused"] == len(base) + 1

        full = base + [counted, timed]
        start = time.perf_counter()
        cold = _cold_oneshot(image, full)
        cold_s = time.perf_counter() - start
        assert warm["artifact"] == cold.recovered.to_json()

        speedup = cold_s / warm_s
        benchmark.extra_info["inputs"] = len(full)
        benchmark.extra_info["cold_seconds"] = cold_s
        benchmark.extra_info["warm_seconds"] = warm_s
        benchmark.extra_info["incremental_speedup"] = speedup
        benchmark.extra_info["traces_reused"] = warm["stats"]["traces_reused"]
        benchmark.extra_info["functions_reused"] = reused_functions
        assert speedup >= 1.2, (
            f"incremental addition speedup {speedup:.2f}x < 1.2x "
            f"(cold {cold_s:.2f}s, warm {warm_s:.3f}s)")
    finally:
        daemon.close()
