"""Control-flow graph simplification.

Removes unreachable blocks, folds constant branches, merges straight-line
block chains and forwards empty blocks — the canonicalizations that keep
the rest of the pipeline (and the lowerer) working on small CFGs.
"""

from __future__ import annotations

from ..ir.module import Function
from ..ir.values import Br, CondBr, Const, Switch
from .analysis import predecessors, reachable

#: Preserved-analyses declaration for the pass manager: CFG
#: simplification exists to mutate control flow, so a change invalidates
#: every cached CFG analysis.
PRESERVES: frozenset = frozenset()


def remove_unreachable(func: Function) -> bool:
    live = set(reachable(func))
    dead = [b for b in func.blocks if b not in live]
    if not dead:
        return False
    for block in live:
        for phi in block.phis():
            for d in dead:
                if d in phi.blocks:
                    phi.remove_incoming(d)
    func.blocks = [b for b in func.blocks if b in live]
    func.invalidate()
    return True


def fold_constant_branches(func: Function) -> bool:
    changed = False
    for block in func.blocks:
        term = block.terminator
        if isinstance(term, CondBr) and isinstance(term.cond, Const):
            taken = term.if_true if term.cond.value else term.if_false
            dropped = term.if_false if term.cond.value else term.if_true
            block.instrs[-1] = Br(taken)
            block.instrs[-1].block = block
            if dropped is not taken:
                for phi in dropped.phis():
                    if block in phi.blocks:
                        phi.remove_incoming(block)
            changed = True
        elif isinstance(term, CondBr) and term.if_true is term.if_false:
            block.instrs[-1] = Br(term.if_true)
            block.instrs[-1].block = block
            changed = True
        elif isinstance(term, Switch) and isinstance(term.value, Const):
            target = term.default
            for case, dest in term.cases:
                if (case & 0xFFFFFFFF) == term.value.value:
                    target = dest
                    break
            for succ in term.successors():
                if succ is not target:
                    for phi in succ.phis():
                        if block in phi.blocks:
                            phi.remove_incoming(block)
            block.instrs[-1] = Br(target)
            block.instrs[-1].block = block
            changed = True
    if changed:
        func.invalidate()
    return changed


def merge_block_chains(func: Function) -> bool:
    """Merge B into A when A ends ``br B`` and B has A as sole pred."""
    changed = False
    while True:
        preds = predecessors(func)
        merged = False
        for block in func.blocks:
            if not block.is_terminated:
                continue
            term = block.terminator
            if not isinstance(term, Br):
                continue
            succ = term.target
            if succ is block or succ is func.entry:
                continue
            if len(preds[succ]) != 1:
                continue
            if succ.phis():
                for phi in succ.phis():
                    value = phi.value_for(block)
                    _replace_value_everywhere(func, phi, value)
                succ.instrs = succ.instrs[len(succ.phis()):]
            block.instrs.pop()  # drop the br
            for instr in succ.instrs:
                instr.block = block
                block.instrs.append(instr)
            # Successor phis naming `succ` as incoming now come from `block`.
            for nxt in block.successors():
                for phi in nxt.phis():
                    phi.blocks = [block if b is succ else b
                                  for b in phi.blocks]
            func.blocks.remove(succ)
            func.invalidate()
            merged = True
            changed = True
            break
        if not merged:
            return changed


def forward_empty_blocks(func: Function) -> bool:
    """Retarget branches through blocks that only contain ``br X``."""
    changed = False
    for block in list(func.blocks):
        if block is func.entry or len(block.instrs) != 1:
            continue
        term = block.instrs[0]
        if not isinstance(term, Br):
            continue
        target = term.target
        if target is block or target.phis():
            # Forwarding into a phi-block would need incoming rewrites that
            # can conflict; leave those to merge_block_chains.
            continue
        preds = predecessors(func)[block]
        if not preds:
            continue
        for pred in preds:
            pterm = pred.terminator
            if isinstance(pterm, Br) and pterm.target is block:
                pterm.target = target
            elif isinstance(pterm, CondBr):
                if pterm.if_true is block:
                    pterm.if_true = target
                if pterm.if_false is block:
                    pterm.if_false = target
            elif isinstance(pterm, Switch):
                pterm.cases = [(v, target if b is block else b)
                               for v, b in pterm.cases]
                if pterm.default is block:
                    pterm.default = target
            changed = True
        # Terminators were retargeted in place (same instruction count);
        # the cached predecessor map read above is now stale.
        func.invalidate()
    if changed:
        remove_unreachable(func)
    return changed


def simplify_single_incoming_phis(func: Function) -> bool:
    changed = False
    for block in func.blocks:
        for phi in list(block.phis()):
            distinct = {v for v in phi.ops if v is not phi}
            if len(distinct) == 1:
                _replace_value_everywhere(func, phi, distinct.pop())
                block.instrs.remove(phi)
                changed = True
    if changed:
        func.invalidate()
    return changed


def _replace_value_everywhere(func: Function, old, new) -> None:
    for instr in func.instructions():
        instr.replace_operand(old, new)


def simplify_cfg(func: Function) -> bool:
    """Run all CFG simplifications to a fixed point."""
    changed = False
    while True:
        round_changed = False
        round_changed |= remove_unreachable(func)
        round_changed |= fold_constant_branches(func)
        round_changed |= remove_unreachable(func)
        round_changed |= merge_block_chains(func)
        round_changed |= forward_empty_blocks(func)
        round_changed |= simplify_single_incoming_phis(func)
        if not round_changed:
            return changed
        changed = True
