"""WYTIWYG: the paper's core contribution — refinement lifting and
dynamic stack-layout recovery."""

from .accuracy import CATEGORIES, AccuracyReport, evaluate_accuracy
from .driver import WytiwygResult, wytiwyg_lift, wytiwyg_recompile
from .extfuncs import EXTERNAL_DB, VARARG_FUNCTIONS, Constraint, ExtSig
from .incremental import (
    JobStats,
    ServedResult,
    gather_traces,
    incremental_recompile,
    pipeline_options_tag,
)
from .instrument import (
    FunctionInstrumentation,
    ModuleInstrumentation,
    instrument_module,
    strip_probes,
)
from .layout import FrameLayout, FrameVariable, build_frame_layout, \
    build_layouts
from .regsave import (
    RegSavePlugin,
    RegSaveResult,
    apply_register_classification,
    classify_registers,
)
from .replace import drop_sp_threading, replace_base_pointers
from .runtime import ArgAccess, PointerInfo, StackVar, TracingRuntime
from .signatures import SignaturePlan, build_signatures
from .sp0fold import (
    classify_stack_refs,
    compute_sp0_offsets,
    fold_module_stack_refs,
    is_lifted_function,
)
from .varargs import recover_vararg_calls

__all__ = [
    "AccuracyReport", "ArgAccess", "CATEGORIES", "Constraint",
    "EXTERNAL_DB", "ExtSig", "FrameLayout", "FrameVariable",
    "FunctionInstrumentation", "JobStats", "ModuleInstrumentation",
    "PointerInfo",
    "RegSavePlugin", "RegSaveResult", "ServedResult", "SignaturePlan",
    "StackVar",
    "TracingRuntime", "VARARG_FUNCTIONS", "WytiwygResult",
    "apply_register_classification", "build_frame_layout",
    "build_layouts", "build_signatures", "classify_registers",
    "classify_stack_refs", "compute_sp0_offsets", "drop_sp_threading",
    "evaluate_accuracy", "fold_module_stack_refs", "gather_traces",
    "incremental_recompile", "instrument_module",
    "is_lifted_function", "pipeline_options_tag",
    "recover_vararg_calls",
    "replace_base_pointers", "strip_probes", "wytiwyg_lift",
    "wytiwyg_recompile",
]
