"""Dynamic control-flow tracing (the S2E role in the paper's Figure 4).

A :class:`Tracer` attaches to the machine emulator and records, for a set
of inputs, every control transfer and every executed instruction address.
:class:`TraceSet` merges traces across inputs (the paper's "Merge CFGs"
step), and is the sole source of control-flow information for the lifter —
the dynamic-only discipline that lets WYTIWYG avoid heuristic CFG
recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..binary.image import BinaryImage
from .costs import DEFAULT_COSTS, CostModel
from .machine import Machine, RunResult


@dataclass(frozen=True)
class Transfer:
    """One observed control transfer."""

    src: int
    dst: int
    kind: str  # "call" | "ret" | "jump" | "fallthrough" | "import"


class Tracer:
    """Collects transfers and coverage during one or more executions."""

    def __init__(self) -> None:
        self.transfers: set[Transfer] = set()
        self.executed: set[int] = set()

    # ControlSink protocol -------------------------------------------------

    def transfer(self, src: int, dst: int, kind: str) -> None:
        self.transfers.add(Transfer(src, dst, kind))

    # Shadowing the method name is fine: the protocol method and the
    # attribute would collide, so the sink exposes `executed_addr`.
    def executed_addr(self, addr: int) -> None:
        self.executed.add(addr)


class _SinkAdapter:
    """Adapts a Tracer to the Machine's ControlSink protocol."""

    def __init__(self, tracer: Tracer):
        self._tracer = tracer

    def transfer(self, src: int, dst: int, kind: str) -> None:
        self._tracer.transfer(src, dst, kind)

    def executed(self, addr: int) -> None:
        self._tracer.executed_addr(addr)


@dataclass
class TraceSet:
    """Merged dynamic information for one binary across traced inputs."""

    image: BinaryImage
    transfers: set[Transfer] = field(default_factory=set)
    executed: set[int] = field(default_factory=set)
    results: list[RunResult] = field(default_factory=list)
    inputs: list[list[int | bytes]] = field(default_factory=list)

    def merge(self, tracer: Tracer, result: RunResult,
              input_items: list[int | bytes]) -> None:
        self.transfers |= tracer.transfers
        self.executed |= tracer.executed
        self.results.append(result)
        self.inputs.append(list(input_items))

    @property
    def call_targets(self) -> set[int]:
        return {t.dst for t in self.transfers if t.kind == "call"}

    @property
    def jump_edges(self) -> set[tuple[int, int]]:
        return {(t.src, t.dst) for t in self.transfers
                if t.kind in ("jump", "fallthrough")}


def trace_binary(image: BinaryImage,
                 inputs: list[list[int | bytes]],
                 costs: CostModel = DEFAULT_COSTS,
                 max_instructions: int = 80_000_000) -> TraceSet:
    """Run ``image`` on every input, merging traces (incremental lifting).

    This is the paper's initial tracing phase: each input contributes
    coverage, and the merged trace set drives lifting.
    """
    traces = TraceSet(image)
    for input_items in inputs:
        tracer = Tracer()
        machine = Machine(image, list(input_items), costs=costs,
                          max_instructions=max_instructions,
                          trace_sink=_SinkAdapter(tracer))
        result = machine.run()
        traces.merge(tracer, result, input_items)
    return traces
