"""The repro binary container format.

A :class:`BinaryImage` is the unit that the toolchain passes around: the
MiniC compiler produces one, the emulator runs one, the lifter consumes
one, and the recompiler emits a new one.  It holds loadable sections, an
entry point, an import table (names of external libc functions), an
optional symbol table, and an optional **debug section** carrying the
compiler's ground-truth stack layouts.

The debug section is the analogue of the paper's LLVM "Stack Frame Layout"
ground truth (Section 6.3): it is written by the compiler, *never* read by
the lifter or symbolizer, and consumed only by the accuracy evaluation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import LinkError

# Canonical load addresses, loosely modelled on a classic 32-bit ELF layout.
TEXT_BASE = 0x08048000
STACK_TOP = 0x0BF00000
STACK_SIZE = 0x00200000  # default 2 MiB; gcc/xalan-style runs may raise it
HEAP_BASE = 0x0A000000
HEAP_SIZE = 0x01000000


@dataclass
class Section:
    """A loadable section: raw bytes at a fixed virtual address."""

    name: str
    base: int
    data: bytes
    writable: bool = False

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


@dataclass
class StackObject:
    """One ground-truth stack allocation within a function frame.

    ``offset`` is relative to ``sp0``, the stack pointer value at function
    entry (so offsets are negative for locals, following the paper's
    convention in Figure 2).  ``kind`` distinguishes source variables from
    compiler-introduced slots.
    """

    name: str
    offset: int
    size: int
    kind: str = "var"  # "var" | "spill" | "saved_reg" | "arg_out"

    def overlaps(self, lo: int, hi: int) -> bool:
        return self.offset < hi and lo < self.offset + self.size


@dataclass
class FrameGroundTruth:
    """Ground-truth frame layout for one compiled function."""

    func_name: str
    entry: int
    frame_size: int
    objects: list[StackObject] = field(default_factory=list)


@dataclass
class BinaryImage:
    """A complete, runnable program image."""

    text: Section
    data_sections: list[Section] = field(default_factory=list)
    entry: int = TEXT_BASE
    imports: list[str] = field(default_factory=list)
    symbols: dict[str, int] = field(default_factory=dict)
    ground_truth: list[FrameGroundTruth] = field(default_factory=list)
    #: Free-form provenance, e.g. {"compiler": "gcc12", "opt": "O3"}.
    metadata: dict[str, str] = field(default_factory=dict)

    @property
    def sections(self) -> list[Section]:
        return [self.text, *self.data_sections]

    def section_at(self, addr: int) -> Section | None:
        for sec in self.sections:
            if sec.contains(addr):
                return sec
        return None

    def symbol_for(self, addr: int) -> str | None:
        for name, a in self.symbols.items():
            if a == addr:
                return name
        return None

    def stripped(self) -> "BinaryImage":
        """Return a copy without symbols or ground truth (a COTS binary).

        Memoized: callers strip the same image repeatedly (once per
        evaluation cell), and returning one object lets the per-image
        block cache stay warm across those runs.
        """
        cached = self.__dict__.get("_stripped")
        if cached is not None:
            return cached
        if not self.symbols and not self.ground_truth:
            self.__dict__["_stripped"] = self
            return self
        stripped = self._strip()
        self.__dict__["_stripped"] = stripped
        return stripped

    def _strip(self) -> "BinaryImage":
        return BinaryImage(
            text=self.text,
            data_sections=list(self.data_sections),
            entry=self.entry,
            imports=list(self.imports),
            symbols={},
            ground_truth=[],
            metadata=dict(self.metadata),
        )

    def validate(self) -> None:
        """Check that sections do not overlap and the entry is in text."""
        placed = sorted(self.sections, key=lambda s: s.base)
        for a, b in zip(placed, placed[1:], strict=False):
            if a.end > b.base:
                raise LinkError(f"sections {a.name} and {b.name} overlap")
        if not self.text.contains(self.entry):
            raise LinkError(f"entry {self.entry:#x} outside text section")

    # -- serialization ------------------------------------------------------

    def to_json(self) -> str:
        """Serialize to a JSON document (bytes hex-encoded)."""
        def sec(s: Section) -> dict:
            return {"name": s.name, "base": s.base,
                    "data": s.data.hex(), "writable": s.writable}

        doc = {
            "text": sec(self.text),
            "data_sections": [sec(s) for s in self.data_sections],
            "entry": self.entry,
            "imports": self.imports,
            "symbols": self.symbols,
            "ground_truth": [
                {"func_name": g.func_name, "entry": g.entry,
                 "frame_size": g.frame_size,
                 "objects": [{"name": o.name, "offset": o.offset,
                              "size": o.size, "kind": o.kind}
                             for o in g.objects]}
                for g in self.ground_truth
            ],
            "metadata": self.metadata,
        }
        return json.dumps(doc)

    @classmethod
    def from_json(cls, text: str) -> "BinaryImage":
        doc = json.loads(text)

        def sec(d: dict) -> Section:
            return Section(d["name"], d["base"], bytes.fromhex(d["data"]),
                           d["writable"])

        return cls(
            text=sec(doc["text"]),
            data_sections=[sec(d) for d in doc["data_sections"]],
            entry=doc["entry"],
            imports=list(doc["imports"]),
            symbols={k: int(v) for k, v in doc["symbols"].items()},
            ground_truth=[
                FrameGroundTruth(
                    g["func_name"], g["entry"], g["frame_size"],
                    [StackObject(o["name"], o["offset"], o["size"],
                                 o["kind"]) for o in g["objects"]])
                for g in doc["ground_truth"]
            ],
            metadata=dict(doc["metadata"]),
        )
