"""repro.sched — the serve daemon's multi-process job scheduler.

PR 8's daemon executed every job under one in-process lock: the warm
incremental state (the optimizer's cross-stage fingerprint memo, the
lowering cache, the published fork-pool context) is process-global, so
two jobs could not safely overlap in one process — and the daemon's
throughput ceiling was one job at a time regardless of core count.

This module moves job execution into a pool of **long-lived worker
processes**.  Each worker is forked once at scheduler start and then
runs many jobs, so the per-process warm state accumulates exactly as
it did in the single-process daemon — result-key memos via the shared
store, per-image trace records, the optimizer's fingerprint memo, and
the lowering cache all stay hot *inside the worker* between jobs.
Cross-worker reuse still lands via the shared content-addressed
:class:`~repro.store.ArtifactStore` on disk (its atomic
tmp+``os.replace`` writes make concurrent puts safe; last writer wins
and wrote the same bytes anyway).

Scheduling model:

* **Bounded FIFO queue with backpressure** — submissions past
  ``max_depth`` are rejected immediately with a retry hint
  (:class:`~repro.errors.SchedRejected` carries ``retry_after``
  estimated from the queue depth and a moving average of job
  durations) instead of queueing unboundedly.
* **Image-affinity dispatch** — a job's ``image_key`` hashes to a
  preferred worker (:func:`affinity_worker`), so repeat requests for
  one image land on the worker whose in-process caches are already
  warm for it.
* **Work stealing** — when the affine worker is busy and another is
  idle, the job is dispatched to the idle worker rather than waiting
  (correctness is unaffected: the artifact store serves the disk-level
  reuse either way; only the in-process warmth is forfeited).
* **Per-job wall-clock limit** — ``job_timeout`` kills the worker
  mid-job, fails the job with kind ``JobTimeout``, emits a
  ``job.timeout`` ledger event, and respawns the worker so the slot is
  freed.  Worker crashes are handled the same way (kind
  ``WorkerDied``).

Observability: counters ``sched.dispatch`` / ``sched.steal`` /
``sched.reject`` / ``sched.timeout`` with matching ledger events, the
``sched.queue_depth`` gauge, and a ``worker.job`` span per job emitted
*inside* the worker.  Workers ship their recorder/ledger state home
per job over the existing payload protocol
(:func:`repro.obs.export_payload` / :func:`~repro.obs.merge_payload`),
so parent-side reports aggregate the whole pool.

Like :mod:`repro.parallel`, workers are forked (``fork`` start
method); on platforms without it the serve daemon falls back to its
single-lock in-process path, which computes the same results.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections import deque
from pathlib import Path

from . import obs
from .binary.image import BinaryImage
from .core.incremental import incremental_recompile, warm_stats
from .errors import SchedError, SchedRejected
from .parallel import ForkPool
from .store import ArtifactStore, decode_runs

__all__ = ["JobScheduler", "affinity_worker", "execute_job"]

#: Default queue bound, per worker: enough to keep the pool busy
#: through bursts without letting latency grow unboundedly.
DEPTH_PER_WORKER = 4

#: Fallback per-job seconds estimate before any job has completed
#: (seed for the retry hint's moving average).
_SECONDS_SEED = 5.0


def affinity_worker(image_key: str, workers: int) -> int:
    """The preferred worker index for an image: a stable hash of the
    image's content key, so every request for one image prefers the
    same worker (and its warm caches) for the daemon's lifetime."""
    if workers <= 1:
        return 0
    try:
        return int(image_key[:8], 16) % workers
    except ValueError:
        return sum(image_key.encode()) % workers


# -- job execution (runs in the worker process; also used inline by the
# -- single-lock serve path so both modes share one code path) -----------

def execute_job(spec: dict, store: ArtifactStore, jobs: int = 1,
                opt_jobs: int | None = None, replay_pool=None,
                image: BinaryImage | None = None) -> dict:
    """Run one job spec and return the response fields it produced.

    ``spec["op"]`` selects the job type: ``"recompile"`` (default) runs
    the store-backed incremental pipeline; ``"probe"`` is a scheduler
    liveness/latency probe that optionally sleeps ``spec["sleep"]``
    seconds — it exercises dispatch, timeout and drain machinery
    without pipeline cost (used by the scheduler tests).

    The in-process serve path passes the already-parsed ``image`` to
    skip a JSON round trip; workers parse it from ``spec["image_json"]``.
    """
    if spec.get("op") == "probe":
        if spec.get("sleep"):
            time.sleep(float(spec["sleep"]))
        return {"served": "probe", "stats": {}, "image_key":
                spec.get("image_key", ""), "result_key": "",
                "fallback": False, "notes": [], "coverage": {}}
    if image is None:
        image = BinaryImage.from_json(spec["image_json"])
    runs = decode_runs(spec.get("inputs", []))
    options = spec.get("options") or {}
    served = incremental_recompile(
        image, runs, store,
        optimize=options.get("optimize", True),
        check=options.get("check"),
        static_widen=options.get("static_widen"),
        hybrid=options.get("hybrid", False),
        jobs=jobs, opt_jobs=opt_jobs, replay_pool=replay_pool,
        collect_accuracy=options.get("collect_accuracy", True))
    out: dict = {
        "served": served.stats.served,
        "stats": served.stats.to_dict(),
        "image_key": served.image_key,
        "result_key": served.result_key,
        "fallback": served.fallback,
        "notes": list(served.notes),
        "coverage": dict(served.coverage),
    }
    if served.accuracy is not None:
        out["accuracy"] = {"precision": served.accuracy.precision,
                           "recall": served.accuracy.recall}
    if spec.get("output"):
        Path(spec["output"]).write_text(served.recovered.to_json())
        out["output"] = spec["output"]
    if spec.get("return_artifact"):
        out["artifact"] = served.recovered.to_json()
    return out


def _arm_worker_obs(spec: dict) -> bool:
    """Bring this worker's observability state in line with the
    parent's for one job; returns whether a payload must ship home."""
    armed = bool(spec.get("obs"))
    if armed:
        # Reset per job: the worker is reused, and its recorder may
        # hold pre-fork parent data or a previous job's counts — both
        # would double-count when the parent merges this payload.
        obs.enable(reset=True)
    ledger_path = spec.get("ledger_path")
    led = obs.ledger()
    if ledger_path:
        # File-backed: append directly (atomic O_APPEND writes), no
        # shipping needed.  Reopen only when the path changed.
        if led is None or led.path is None or str(led.path) != str(
                ledger_path):
            obs.enable_ledger(ledger_path)
    elif spec.get("ledger_mem"):
        # Parent records in memory: collect fresh events here and ship
        # them in the payload.
        obs.enable_ledger()
        armed = True
    elif led is not None and led.path is None:
        obs.disable_ledger()
    return armed


def _worker_main(conn, worker_id: int, store_root: str, jobs: int,
                 opt_jobs: int | None) -> None:
    """Worker process entry: serve job specs from ``conn`` until EOF or
    a ``None`` sentinel.  All warm in-process state (optimizer memo,
    lowering cache, replay pool, block caches) lives and accumulates
    here, one pool per worker."""
    obs.fork_begin()   # drop any in-memory events inherited over fork
    store = ArtifactStore(store_root)
    pool = ForkPool(jobs) if jobs > 1 else None
    try:
        while True:
            try:
                spec = conn.recv()
            except (EOFError, OSError):
                break
            if spec is None:
                break
            shipping = _arm_worker_obs(spec)
            try:
                with obs.span("worker.job", worker=worker_id,
                              job=spec.get("job", 0),
                              image=spec.get("image_key", "")):
                    result = execute_job(spec, store, jobs=jobs,
                                         opt_jobs=opt_jobs,
                                         replay_pool=pool)
                result["ok"] = True
            except Exception as exc:   # ship the failure, stay alive
                result = {"ok": False, "error": str(exc),
                          "kind": type(exc).__name__}
            result["worker"] = worker_id
            result["warm"] = warm_stats()
            if shipping:
                result["obs"] = obs.export_payload()
            try:
                conn.send(result)
            except (BrokenPipeError, OSError):
                break
    finally:
        if pool is not None:
            pool.close()


class _Job:
    """One queued submission and its completion rendezvous."""

    __slots__ = ("seq", "spec", "affine", "done", "result", "worker",
                 "enqueued", "deadline")

    def __init__(self, seq: int, spec: dict, affine: int):
        self.seq = seq
        self.spec = spec
        self.affine = affine
        self.done = threading.Event()
        self.result: dict | None = None
        self.worker: int | None = None
        self.enqueued = time.monotonic()
        self.deadline: float | None = None


class _Worker:
    """Parent-side handle for one worker slot (survives respawns)."""

    __slots__ = ("idx", "proc", "conn", "job", "jobs_done", "failures",
                 "last_image", "warm")

    def __init__(self, idx: int):
        self.idx = idx
        self.proc = None
        self.conn = None
        self.job: _Job | None = None
        self.jobs_done = 0
        self.failures = 0
        self.last_image = ""
        self.warm: dict = {}


class JobScheduler:
    """A bounded-queue, affinity-dispatching pool of worker processes.

    One instance per daemon.  Handler threads call :meth:`submit`,
    which blocks until the job's result is available (or raises
    :class:`~repro.errors.SchedRejected` when the queue is full).
    """

    def __init__(self, workers: int, store_root, jobs: int = 1,
                 opt_jobs: int | None = None,
                 max_depth: int | None = None,
                 job_timeout: float | None = None):
        self.workers = max(1, int(workers))
        self.store_root = str(store_root)
        self.jobs = max(1, int(jobs))
        self.opt_jobs = opt_jobs
        self.max_depth = (int(max_depth) if max_depth is not None
                          else DEPTH_PER_WORKER * self.workers)
        self.job_timeout = job_timeout
        self.stats = {"submitted": 0, "completed": 0, "failed": 0,
                      "dispatched": 0, "affine": 0, "stolen": 0,
                      "rejected": 0, "timeouts": 0, "respawns": 0}
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue: deque[_Job] = deque()
        self._slots = [_Worker(i) for i in range(self.workers)]
        self._seq = 0
        self._ewma_seconds = _SECONDS_SEED
        self._started = False
        self._closing = False
        self._stopping = False
        self._mp = multiprocessing.get_context("fork")
        self._threads: list[threading.Thread] = []

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Fork the worker pool and start the dispatch machinery.
        Call before the owning daemon spawns handler threads — workers
        fork cleanest from a single-threaded parent."""
        with self._cond:
            if self._started:
                return
            self._started = True
            for slot in self._slots:
                self._spawn_locked(slot)
        self._threads = [threading.Thread(
            target=self._dispatch_loop, name="sched-dispatch",
            daemon=True)]
        self._threads += [threading.Thread(
            target=self._recv_loop, args=(slot,),
            name=f"sched-recv-{slot.idx}", daemon=True)
            for slot in self._slots]
        for thread in self._threads:
            thread.start()

    def _spawn_locked(self, slot: _Worker) -> None:
        parent_conn, child_conn = self._mp.Pipe()
        proc = self._mp.Process(
            target=_worker_main,
            args=(child_conn, slot.idx, self.store_root, self.jobs,
                  self.opt_jobs),
            name=f"repro-sched-worker-{slot.idx}", daemon=True)
        proc.start()
        child_conn.close()
        slot.proc, slot.conn = proc, parent_conn

    def _respawn_locked(self, slot: _Worker) -> None:
        if self._stopping:
            slot.proc, slot.conn = None, None
            return
        try:
            if slot.proc is not None and slot.proc.is_alive():
                slot.proc.kill()
            if slot.conn is not None:
                slot.conn.close()
        except OSError:
            pass
        self.stats["respawns"] += 1
        self._spawn_locked(slot)

    def close(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Stop the scheduler.  ``drain=True`` lets queued and running
        jobs finish first (new submits are rejected immediately);
        ``drain=False`` fails queued jobs and kills running ones."""
        with self._cond:
            if not self._started or self._stopping:
                self._closing = True
                return
            self._closing = True
            if not drain:
                while self._queue:
                    job = self._queue.popleft()
                    job.result = {"ok": False, "kind": "SchedError",
                                  "error": "scheduler shut down before "
                                           "the job ran"}
                    job.done.set()
            self._cond.notify_all()
        if drain:
            deadline = time.monotonic() + timeout
            with self._cond:
                self._cond.wait_for(
                    lambda: not self._queue and all(
                        s.job is None for s in self._slots),
                    timeout=max(0.0, deadline - time.monotonic()))
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
            slots = list(self._slots)
        for slot in slots:
            conn, proc, job = slot.conn, slot.proc, slot.job
            if job is not None:      # undrained (or drain timed out)
                job.result = {"ok": False, "kind": "SchedError",
                              "error": "scheduler shut down mid-job"}
                job.done.set()
                slot.job = None
            if conn is not None:
                try:
                    conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            if proc is not None:
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=5.0)
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
            slot.conn = slot.proc = None

    # -- submission ------------------------------------------------------

    def submit(self, spec: dict) -> dict:
        """Enqueue one job spec and block until its result.

        Returns the worker's result dict (``ok`` False carries
        ``error``/``kind`` of the failure).  Raises
        :class:`SchedRejected` past the depth bound and
        :class:`SchedError` once the scheduler is shutting down.
        """
        if not self._started:
            raise SchedError("scheduler is not started")
        # Snapshot the parent's observability state for the worker.
        led = obs.ledger()
        spec.setdefault("obs", obs.enabled())
        spec.setdefault("ledger_path",
                        str(led.path) if led is not None
                        and led.path is not None else None)
        spec.setdefault("ledger_mem",
                        led is not None and led.path is None)
        with self._cond:
            if self._closing:
                raise SchedError("scheduler is shutting down")
            depth = len(self._queue)
            if depth >= self.max_depth:
                self.stats["rejected"] += 1
                hint = max(1.0, (depth + 1) * self._ewma_seconds
                           / self.workers)
                obs.count("sched.reject")
                obs.event("sched.reject", depth=depth,
                          image=spec.get("image_key", ""),
                          retry_after=round(hint, 1))
                raise SchedRejected(
                    f"job queue full ({depth} jobs deep, "
                    f"{self.workers} workers); retry in ~{hint:.0f}s",
                    retry_after=hint)
            self._seq += 1
            job = _Job(self._seq, spec,
                       affinity_worker(spec.get("image_key", ""),
                                       self.workers))
            self._queue.append(job)
            self.stats["submitted"] += 1
            obs.gauge("sched.queue_depth", len(self._queue))
            self._cond.notify_all()
        job.done.wait()
        result = dict(job.result or {})
        obs.merge_payload(result.pop("obs", None))
        return result

    # -- dispatch --------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stopping and not self._assign_locked():
                    self._cond.wait()
                if self._stopping:
                    return

    def _assign_locked(self) -> bool:
        """Assign queued jobs to idle workers; affine placements first,
        then FIFO work-stealing onto whatever idle workers remain.
        Returns True when at least one job was dispatched."""
        if not self._queue:
            return False
        if all(s.job is not None or s.conn is None
               for s in self._slots):
            return False
        assigned = False
        deferred: deque[_Job] = deque()
        while self._queue:
            job = self._queue.popleft()
            slot = self._slots[job.affine]
            if slot.job is None and slot.conn is not None:
                assigned |= self._start_job_locked(slot, job,
                                                   stolen=False)
            else:
                deferred.append(job)
        idle = deque(s for s in self._slots
                     if s.job is None and s.conn is not None)
        while deferred and idle:
            job = deferred.popleft()
            assigned |= self._start_job_locked(idle.popleft(), job,
                                               stolen=True)
        self._queue.extendleft(reversed(deferred))
        obs.gauge("sched.queue_depth", len(self._queue))
        return assigned

    def _start_job_locked(self, slot: _Worker, job: _Job,
                          stolen: bool) -> bool:
        try:
            slot.conn.send(job.spec)
        except (BrokenPipeError, OSError):
            # The worker died while idle: revive it and requeue the
            # job; the fresh worker picks it up on the next pass.
            self._respawn_locked(slot)
            self._queue.appendleft(job)
            return False
        slot.job = job
        slot.last_image = job.spec.get("image_key", "")
        job.worker = slot.idx
        # Wake this slot's recv loop — it may have re-checked (and gone
        # back to waiting) between the submit notify and this dispatch.
        self._cond.notify_all()
        if self.job_timeout is not None:
            job.deadline = time.monotonic() + self.job_timeout
        self.stats["dispatched"] += 1
        waited = time.monotonic() - job.enqueued
        if stolen:
            self.stats["stolen"] += 1
            obs.count("sched.steal")
            obs.event("sched.steal", job=job.seq, worker=slot.idx,
                      affine=job.affine,
                      image=job.spec.get("image_key", ""),
                      waited=round(waited, 4))
        else:
            self.stats["affine"] += 1
            obs.count("sched.dispatch")
            obs.event("sched.dispatch", job=job.seq, worker=slot.idx,
                      image=job.spec.get("image_key", ""),
                      waited=round(waited, 4))
        return True

    # -- completion ------------------------------------------------------

    def _recv_loop(self, slot: _Worker) -> None:
        while True:
            with self._cond:
                while slot.job is None and not self._stopping:
                    self._cond.wait()
                if self._stopping:
                    return
                job, conn = slot.job, slot.conn
            result, died = None, False
            while True:
                try:
                    if conn.poll(0.1):
                        result = conn.recv()
                        break
                except (EOFError, OSError):
                    died = True
                    break
                if job.deadline is not None \
                        and time.monotonic() > job.deadline:
                    break
                with self._lock:
                    if self._stopping:
                        return
            self._complete(slot, job, result, died)

    def _complete(self, slot: _Worker, job: _Job, result, died: bool) \
            -> None:
        elapsed = time.monotonic() - job.enqueued
        timed_out = False
        with self._cond:
            if result is None:
                if died:
                    code = (slot.proc.exitcode
                            if slot.proc is not None else None)
                    result = {"ok": False, "kind": "WorkerDied",
                              "error": f"worker {slot.idx} died "
                                       f"mid-job (exit {code})"}
                else:   # deadline passed with the worker still running
                    self.stats["timeouts"] += 1
                    timed_out = True
                    result = {"ok": False, "kind": "JobTimeout",
                              "error": f"job exceeded the "
                                       f"{self.job_timeout:g}s "
                                       f"wall-clock limit"}
                self._respawn_locked(slot)
                slot.failures += 1
            else:
                slot.jobs_done += 1
                slot.warm = result.pop("warm", slot.warm)
                # Completed-job moving average feeds the retry hint.
                self._ewma_seconds = (0.7 * self._ewma_seconds
                                      + 0.3 * elapsed)
            if result.get("ok"):
                self.stats["completed"] += 1
            else:
                self.stats["failed"] += 1
            slot.job = None
            self._cond.notify_all()
        if timed_out:
            obs.count("sched.timeout")
            obs.event("job.timeout", job=job.seq, worker=slot.idx,
                      seconds=self.job_timeout,
                      image=job.spec.get("image_key", ""))
        job.result = result
        job.done.set()

    # -- introspection ---------------------------------------------------

    def depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def snapshot(self) -> dict:
        """Status-op view: pool shape, counters, per-worker state."""
        with self._lock:
            return {
                "workers": self.workers,
                "queue_depth": len(self._queue),
                "max_depth": self.max_depth,
                "job_timeout": self.job_timeout,
                "stats": dict(self.stats),
                "per_worker": [
                    {"worker": s.idx,
                     "busy": s.job is not None,
                     "jobs": s.jobs_done,
                     "failures": s.failures,
                     "last_image": s.last_image,
                     "warm": dict(s.warm)}
                    for s in self._slots],
            }
