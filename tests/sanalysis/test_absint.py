"""Unit tests for the VSA-lite abstract domain and interpreter."""

from repro.ir import Builder, Const, Function
from repro.sanalysis import AbsVal, analyze_function
from repro.sanalysis.absint import (
    BOT_V,
    NUM_TOP,
    TOP_V,
    _Interpreter,
    join,
    widen,
)


def lifted_function(name="fn_1000"):
    """A skeleton the analyzer recognizes as lifted (sp first param,
    original entry recorded)."""
    f = Function(name, ["sp", "eax"])
    f.orig_entry = 0x1000
    return f


# -- domain algebra ----------------------------------------------------------


def test_join_bot_is_identity():
    v = AbsVal.sp(-8, -8)
    assert join(BOT_V, v) == v
    assert join(v, BOT_V) == v


def test_join_top_dominates():
    assert join(TOP_V, AbsVal.const(3)) == TOP_V


def test_join_mixed_regions_is_top():
    assert join(AbsVal.const(4), AbsVal.sp(0, 0)) == TOP_V


def test_join_same_region_takes_hull():
    assert join(AbsVal.sp(-16, -12), AbsVal.sp(-8, -4)) \
        == AbsVal.sp(-16, -4)


def test_join_infinite_bounds_absorb():
    assert join(AbsVal.num(None, 4), AbsVal.num(0, 8)) \
        == AbsVal.num(None, 8)


def test_widen_growing_bound_to_infinity():
    old = AbsVal.sp(-16, -16)
    grown = AbsVal.sp(-16, -12)
    assert widen(old, grown) == AbsVal.sp(-16, None)
    shrunk_lo = AbsVal.sp(-20, -16)
    assert widen(old, shrunk_lo) == AbsVal.sp(None, -16)


def test_widen_stable_value_is_fixed_point():
    v = AbsVal.sp(-8, -4)
    assert widen(v, v) == v


# -- transfer functions ------------------------------------------------------


def test_sp_plus_const_is_exact():
    f = lifted_function()
    b = Builder(f)
    b.position(f.add_block("entry"))
    addr = b.add(f.params[0], Const(-8))
    b.ret([Const(0), ])
    f.nresults = 1
    values = _Interpreter(f).run()
    assert values[addr] == AbsVal.sp(-8, -8)
    assert values[addr].is_exact_sp


def test_sp_minus_const_and_nested_chain():
    f = lifted_function()
    b = Builder(f)
    b.position(f.add_block("entry"))
    base = b.sub(f.params[0], Const(16))
    addr = b.add(base, Const(4))
    b.ret([Const(0)])
    f.nresults = 1
    values = _Interpreter(f).run()
    assert values[base] == AbsVal.sp(-16, -16)
    assert values[addr] == AbsVal.sp(-12, -12)


def test_loaded_index_degrades_to_derived_shape():
    # sp + (load ...) keeps the SP region but loses the offset — the
    # derived-access shape the corroboration clamp handles.
    f = lifted_function()
    b = Builder(f)
    b.position(f.add_block("entry"))
    slot = b.add(f.params[0], Const(-4))
    idx = b.load(slot, 4)
    addr = b.add(f.params[0], idx)
    b.ret([Const(0)])
    f.nresults = 1
    values = _Interpreter(f).run()
    assert values[idx] == NUM_TOP
    assert values[addr].kind == "sp"
    assert not values[addr].bounded


def test_loop_phi_widens_and_terminates():
    # for (p = sp-64; ...; p += 4) — the phi hull grows every round;
    # widening at the loop header must reach a fixed point.
    f = lifted_function()
    b = Builder(f)
    entry = f.add_block("entry")
    head = f.add_block("head")
    body = f.add_block("body")
    exit_ = f.add_block("exit")
    b.position(entry)
    start = b.sub(f.params[0], Const(64))
    b.br(head)
    b.position(body)
    b.position(head)
    phi = b.phi([(entry, start)])
    cond = b.icmp("slt", Const(0), Const(1))
    b.condbr(cond, body, exit_)
    b.position(body)
    nxt = b.add(phi, Const(4))
    phi.add_incoming(body, nxt)
    b.br(head)
    b.position(exit_)
    b.ret([Const(0)])
    f.nresults = 1
    values = _Interpreter(f).run()
    assert values[phi].kind == "sp"
    assert values[phi].lo == -64 and values[phi].hi is None


# -- frame-access extraction -------------------------------------------------


def test_analyze_function_collects_exact_accesses():
    f = lifted_function()
    b = Builder(f)
    b.position(f.add_block("entry"))
    lo_addr = b.add(f.params[0], Const(-8))
    b.store(lo_addr, Const(7), 4)
    loaded = b.load(lo_addr, 4)
    b.ret([loaded])
    f.nresults = 1
    aset = analyze_function(f)
    assert {(-8, "store"), (-8, "load")} \
        == {(a.lo, a.kind) for a in aset.accesses}
    assert all(a.exact and a.hi == -4 for a in aset.accesses)
    assert aset.frame_low == -8
    assert -8 in aset.known_offsets


def test_analyze_function_anchors_derived_accesses():
    f = lifted_function()
    b = Builder(f)
    b.position(f.add_block("entry"))
    base = b.sub(f.params[0], Const(32))
    idx_slot = b.add(f.params[0], Const(-4))
    idx = b.load(idx_slot, 4)
    elem = b.add(base, idx)
    b.store(elem, Const(1), 4)
    b.ret([Const(0)])
    f.nresults = 1
    aset = analyze_function(f)
    derived = [a for a in aset.accesses if a.derived]
    assert len(derived) == 1
    assert derived[0].lo == -32 and derived[0].hi is None


def test_analyze_function_memoized_per_epoch():
    f = lifted_function()
    b = Builder(f)
    b.position(f.add_block("entry"))
    addr = b.add(f.params[0], Const(-8))
    b.store(addr, Const(7), 4)
    b.ret([Const(0)])
    f.nresults = 1
    first = analyze_function(f)
    assert analyze_function(f) is first
    f.invalidate()  # new mutation epoch
    assert analyze_function(f) is not first


def test_non_lifted_function_yields_empty_set():
    f = Function("plain", ["x"])
    b = Builder(f)
    b.position(f.add_block("entry"))
    b.ret([f.params[0]])
    f.nresults = 1
    aset = analyze_function(f)
    assert aset.accesses == []
