"""Incremental worklist pass manager.

The LLVM-new-pass-manager analogue for this IR: instead of re-running a
fixed schedule on every function of every module at every pipeline
stage, the manager tracks what is already done and skips it.

Three layers of change tracking, cheapest first:

1. **Module snapshot** — after a run in which every function reached
   fixpoint and inlining had nothing left to do, the manager records
   ``(name, version)`` for every function.  A later call over an
   unchanged module returns immediately (the common shape when a
   refinement stage turned out to be a no-op).
2. **Version skip** — a function whose
   :attr:`~repro.ir.module.Function.version` is unchanged since it last
   reached fixpoint under the same schedule is skipped without looking
   at its body.
3. **Cross-stage memo** — keyed on ``(schedule, module context,``
   :func:`~repro.replay.fingerprint.function_fingerprint```)``: a
   *fresh object* (a deep copy, a re-lift, another module) whose content
   matches a known fixpoint is skipped too.  Only fixpoints enter the
   memo — a function that was still changing when the round budget ran
   out is never memoized, whether it was visited serially or by a pool
   worker.  The module context folds in the global-variable layout
   because alias-driven passes consult it.

Functions that survive all three layers are *visited*: the per-round
schedule runs to fixpoint (or the round budget).  Visits between inline
stages are independent per function — every per-function pass reads at
most the module's global-variable layout, never another function's body
— so with ``jobs > 1`` they fan out over the shared fork pool
(:class:`repro.parallel.ForkPool`).  Workers inherit the module over
``fork``, re-optimize their function, and ship it back pickled; the
parent installs results in worklist order and keeps all bookkeeping
(fixpoint records, memo inserts) on its side, so ``jobs=N`` output is
byte-identical to serial.  ``REPRO_OPT_JOBS`` sets the default fan-out
(CLI: ``--opt-jobs``).  Pools are keyed on the module's content
fingerprint and reused across batches while it is unchanged.

Each pass is registered with a **preserved-analyses declaration**
(``PRESERVES`` in its module): when a pass reports a change, the
declared analyses are migrated across the mutation epoch by
:func:`repro.opt.analysis.retain_analyses` instead of being recomputed.

After :func:`~repro.opt.inline.inline_functions` the manager re-enqueues
**only the callers that actually received inlined code** (plus any
function that had not yet reached fixpoint) — the legacy schedule
re-optimized the whole module.

``REPRO_PASS_BASELINE=1`` restores the legacy fixed schedule
(:mod:`repro.opt.pipeline` keeps it verbatim); the worklist engine's
output is byte-identical to it, which ``tests/opt/test_pass_manager.py``
asserts differentially.  ``REPRO_OPT_MEMO=0`` disables only the
cross-stage memo (layers 1–2 still apply), e.g. for cold-path benches.

Observability: per-pass timers/counters keep the legacy
``opt.pass.<name>`` naming, with the two CFG-simplification slots split
as ``simplifycfg.entry`` / ``simplifycfg.exit``; the manager itself
reports ``opt.manager.skipped`` (functions not re-optimized),
``opt.manager.requeued`` (functions re-enqueued after inlining), and
``opt.manager.parallel_visits`` (functions optimized by pool workers);
worker pass metrics merge into the parent recorder.
"""

from __future__ import annotations

import os
import pickle
import sys
import time
from collections import OrderedDict
from concurrent.futures import as_completed
from weakref import WeakKeyDictionary

from .. import obs
from ..ir.module import Function, Module
from ..obs import recorder as _obs_recorder
from ..parallel import ForkPool, worker_ctx
from . import (
    constfold,
    dce,
    dse,
    flagfuse,
    gvn,
    inline,
    mem2reg,
    simplifycfg,
)
from .analysis import current_epoch, retain_analyses


def function_fingerprint(func: Function) -> str:
    """Deferred alias for
    :func:`repro.replay.fingerprint.function_fingerprint` — importing
    :mod:`repro.replay` eagerly would close an import cycle through
    the replay engine's runtime dependencies."""
    from ..replay.fingerprint import function_fingerprint as fp
    globals()["function_fingerprint"] = fp
    return fp(func)


def pass_baseline_enabled() -> bool:
    """``REPRO_PASS_BASELINE=1`` restores the legacy fixed schedule."""
    return os.environ.get("REPRO_PASS_BASELINE", "") not in ("", "0")


def memo_enabled() -> bool:
    """``REPRO_OPT_MEMO=0`` disables the cross-stage fingerprint memo."""
    return os.environ.get("REPRO_OPT_MEMO", "1") not in ("0", "false",
                                                         "off")


def opt_jobs_default() -> int:
    """The default worklist fan-out (``REPRO_OPT_JOBS``, else serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_OPT_JOBS", "1") or "1"))
    except ValueError:
        return 1


def _resolve_jobs(jobs: int | None) -> int:
    return opt_jobs_default() if jobs is None else max(1, int(jobs))


class FunctionPass:
    """A named per-function pass with its preserved-analyses contract."""

    __slots__ = ("name", "run", "preserves")

    def __init__(self, name: str, run, preserves: frozenset):
        self.name = name
        self.run = run
        self.preserves = preserves

    def __repr__(self) -> str:
        return f"<pass {self.name}>"


def build_function_pipeline(opts, module: Module) -> list[FunctionPass]:
    """The standard per-round schedule (mirrors the legacy
    ``pipeline._function_passes``), with the two ``simplifycfg`` slots
    distinguished for per-pass accounting."""
    passes = [
        FunctionPass("simplifycfg.entry", simplifycfg.simplify_cfg,
                     simplifycfg.PRESERVES),
        FunctionPass("mem2reg", mem2reg.promote_allocas,
                     mem2reg.PRESERVES),
        FunctionPass("constfold", constfold.fold_constants,
                     constfold.PRESERVES),
        FunctionPass("flagfuse", flagfuse.fuse_flags,
                     flagfuse.PRESERVES),
    ]
    if opts.gvn:
        passes.append(FunctionPass("gvn", gvn.global_value_numbering,
                                   gvn.PRESERVES))
    if opts.load_elim:
        passes.append(FunctionPass(
            "loadelim",
            lambda f: gvn.eliminate_redundant_loads(f, module),
            gvn.PRESERVES))
    if opts.dse:
        passes.append(FunctionPass(
            "dse", lambda f: dse.eliminate_dead_stores(f, module),
            dse.PRESERVES))
    passes.append(FunctionPass("dce", dce.eliminate_dead_code,
                               dce.PRESERVES))
    passes.append(FunctionPass("simplifycfg.exit",
                               simplifycfg.simplify_cfg,
                               simplifycfg.PRESERVES))
    return passes


def build_canonicalize_pipeline(module: Module) -> list[FunctionPass]:
    """The driver's canonicalization schedule (one round, in order)."""
    return [
        FunctionPass("simplifycfg.entry", simplifycfg.simplify_cfg,
                     simplifycfg.PRESERVES),
        FunctionPass("mem2reg", mem2reg.promote_allocas,
                     mem2reg.PRESERVES),
        FunctionPass("constfold", constfold.fold_constants,
                     constfold.PRESERVES),
        FunctionPass("flagfuse", flagfuse.fuse_flags,
                     flagfuse.PRESERVES),
        FunctionPass("constfold.late", constfold.fold_constants,
                     constfold.PRESERVES),
        FunctionPass("gvn", gvn.global_value_numbering, gvn.PRESERVES),
        FunctionPass("dce", dce.eliminate_dead_code, dce.PRESERVES),
        FunctionPass("simplifycfg.exit", simplifycfg.simplify_cfg,
                     simplifycfg.PRESERVES),
    ]


def _passes_for_schedule(schedule_key: tuple,
                         module: Module) -> list[FunctionPass] | None:
    """Rebuild a known schedule from its key (pool workers do this from
    the picklable key instead of receiving closures).  None for custom
    schedules, which therefore run serially."""
    if schedule_key and schedule_key[0] == "opt":
        return build_function_pipeline(schedule_key[1], module)
    if schedule_key and schedule_key[0] == "canonicalize":
        return build_canonicalize_pipeline(module)
    return None


# -- change-tracking state ----------------------------------------------

#: Cross-stage memo of known fixpoints:
#: ((schedule key, module context), function fingerprint) -> True.
#: Bounded LRU; entries are only ever *fixpoints*, so a hit is a proof
#: that running the schedule again would change nothing.
_MEMO: "OrderedDict[tuple, bool]" = OrderedDict()
_MEMO_MAX = 4096

#: func -> {(schedule key, module context) -> version at last fixpoint}.
_FIXPOINT: "WeakKeyDictionary[Function, dict]" = WeakKeyDictionary()

#: module -> {(schedule key, module context) -> (name, version) snapshot
#: taken after a fully-converged run (fixpoint everywhere, no inlining
#: left)}.
_MODULE_STATE: "WeakKeyDictionary[Module, dict]" = WeakKeyDictionary()


def clear_memo() -> None:
    """Drop all cross-call change-tracking state (tests and benches)."""
    _MEMO.clear()
    _FIXPOINT.clear()
    _MODULE_STATE.clear()


def memo_stats() -> dict:
    """Size of the in-process change-tracking state — the warmth a
    long-lived server has accumulated (reported by ``repro submit
    --status``)."""
    return {"memo_entries": len(_MEMO),
            "fixpoint_functions": len(_FIXPOINT),
            "module_snapshots": len(_MODULE_STATE)}


def _memo_get(key: tuple) -> bool:
    hit = _MEMO.get(key, False)
    if hit:
        _MEMO.move_to_end(key)
    return hit


def _memo_add(key: tuple) -> None:
    _MEMO[key] = True
    _MEMO.move_to_end(key)
    while len(_MEMO) > _MEMO_MAX:
        _MEMO.popitem(last=False)


def _module_context(module: Module) -> tuple:
    """The module-level facts a per-function schedule can observe:
    global-variable layout (alias analysis reads sizes and pinned
    addresses).  Part of every memo key."""
    return tuple(sorted(
        (name, g.size, g.align, g.fixed_addr, g.writable)
        for name, g in module.globals.items()))


# -- fork-pool plumbing --------------------------------------------------

#: The optimizer's shared fork pool; lives across ``optimize_module``
#: calls so consecutive stages over an unchanged module reuse workers.
_POOL: ForkPool | None = None


def close_opt_pool() -> None:
    """Release the optimizer's worker pool (tests, benches, shutdown)."""
    global _POOL
    if _POOL is not None:
        _POOL.close()
        _POOL = None


def _acquire_opt_pool(jobs: int, module: Module, observe: bool,
                      ntasks: int):
    global _POOL
    if _POOL is None or _POOL.jobs != jobs:
        close_opt_pool()
        _POOL = ForkPool(jobs)
    from ..replay.fingerprint import module_fingerprint
    key = ("opt", module_fingerprint(module), observe)
    return _POOL.acquire(key, (module, observe), ntasks)


def _invalidate_opt_pool(cancel: bool = False) -> None:
    if _POOL is not None:
        _POOL.invalidate(cancel=cancel)


#: Pickling an IR function crosses a deep cyclic graph; the default
#: recursion limit can be too tight for long straight-line blocks.
_PICKLE_RECURSION = 100_000


def _dumps_function(func: Function) -> bytes:
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, _PICKLE_RECURSION))
    try:
        return pickle.dumps(func, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        sys.setrecursionlimit(limit)


def _loads_function(blob: bytes) -> Function:
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, _PICKLE_RECURSION))
    try:
        return pickle.loads(blob)
    finally:
        sys.setrecursionlimit(limit)


def _opt_worker(task):
    """Pool-worker entry: re-optimize one inherited function.

    ``task`` is ``(name, schedule_key, rounds)`` — small and picklable;
    the module arrives via fork inheritance.  Returns ``(name, fixed,
    changed_any, fingerprint-or-None, pickled-function-or-None,
    obs payload)``.  The parent owns all memo/fixpoint bookkeeping: a
    worker only ever reports, so a function still changing when the
    round budget ran out (``fixed=False``) can never leak a partial
    result into the memo.
    """
    name, schedule_key, rounds = task
    module, observe = worker_ctx()
    if observe:
        obs.enable(reset=True)
    obs.fork_begin()
    rec = _obs_recorder()
    func = module.functions[name]
    passes = _passes_for_schedule(schedule_key, module)
    fixed, changed_any = _run_rounds(func, passes, rounds, rec)
    fp = function_fingerprint(func) if fixed else None
    blob = _dumps_function(func) if changed_any else None
    return (name, fixed, changed_any, fp, blob,
            obs.export_payload() if observe else None)


# -- pass execution ------------------------------------------------------

def _run_pass(p: FunctionPass, func: Function, rec) -> bool:
    prior = current_epoch(func) if p.preserves else None
    if rec is None:
        changed = p.run(func)
    else:
        registry = rec.registry
        before = _ninstrs(func)
        start = time.perf_counter()
        changed = p.run(func)
        registry.timer(f"opt.pass.{p.name}").add(
            time.perf_counter() - start)
        registry.count(f"opt.pass.{p.name}.runs")
        delta = before - _ninstrs(func)
        if delta:
            registry.count(f"opt.pass.{p.name}.instrs_removed",
                           delta)
    if changed and prior is not None:
        retain_analyses(func, p.preserves, prior)
    return changed


def _run_rounds(func: Function, passes: list[FunctionPass],
                rounds: int, rec) -> tuple[bool, bool]:
    """Run the schedule to fixpoint or the round budget.

    Returns ``(fixed, changed_any)``: ``fixed`` is True only when a full
    round reported no change — the *only* state that may be memoized.
    """
    changed_any = False
    for _ in range(rounds):
        changed = False
        for p in passes:
            changed |= _run_pass(p, func, rec)
        if not changed:
            return True, changed_any
        changed_any = True
    return False, changed_any


_SKIPPED, _FIXED, _UNRESOLVED = range(3)


class PassManager:
    """Run a pass schedule over a module as an incremental worklist."""

    def __init__(self, module: Module, passes: list[FunctionPass],
                 schedule_key: tuple, rounds: int,
                 inline_threshold: int | None = None,
                 jobs: int = 1):
        self.module = module
        self.passes = passes
        self.schedule_key = schedule_key
        self.rounds = max(rounds, 1)
        #: None disables the inline stage entirely.
        self.inline_threshold = inline_threshold
        #: Worklist fan-out; custom schedules (unknown keys) cannot be
        #: rebuilt inside a worker and always run serially.
        self.jobs = max(1, int(jobs)) \
            if _passes_for_schedule(schedule_key, module) is not None \
            else 1
        self._token = (schedule_key, _module_context(module))
        self._rec = _obs_recorder()
        self._memo_on = memo_enabled()
        #: Names still short of fixpoint after their last visit.
        self.unresolved: set[str] = set()
        #: True when the inline stage reported changed callers.
        self.inlined = False

    # -- module-level fast path -----------------------------------------

    def _snapshot(self) -> tuple:
        return tuple((name, f.version)
                     for name, f in self.module.functions.items())

    def module_at_fixpoint(self) -> bool:
        """True when a prior fully-converged run of this schedule left
        the module exactly as it is now."""
        state = _MODULE_STATE.get(self.module)
        return state is not None and \
            state.get(self._token) == self._snapshot()

    def record_module_fixpoint(self) -> None:
        """Snapshot the module if this run converged completely: every
        function at fixpoint and (when inlining is on) no admissible
        inline candidate left.  Callers invoke this after any module
        passes that run outside the manager (function dropping)."""
        if self.unresolved:
            return
        if self.inline_threshold is not None and inline.inline_would_change(
                self.module, max_callee_size=self.inline_threshold):
            return
        _MODULE_STATE.setdefault(self.module, {})[self._token] = \
            self._snapshot()

    # -- worklist --------------------------------------------------------

    def run(self) -> None:
        module = self.module
        if self.module_at_fixpoint():
            obs.count("opt.manager.skipped", len(module.functions))
            obs.event("opt.skip", scope="module",
                      functions=len(module.functions))
            return
        self._visit(list(module.functions.values()))
        if self.inline_threshold is None:
            return
        changed = self._run_inline()
        if not changed:
            return
        self.inlined = True
        # Only callers that received code (their bodies are new) and
        # functions that never reached fixpoint can react to another
        # round; everything else is provably a no-op.
        targets = [f for name, f in module.functions.items()
                   if name in changed or name in self.unresolved]
        obs.count("opt.manager.requeued", len(targets))
        if obs.ledger() is not None:
            obs.event("opt.requeue",
                      functions=sorted(f.name for f in targets))
        self.unresolved.clear()
        self._visit(targets)

    def _visit(self, funcs: list[Function]) -> None:
        """One worklist sweep over ``funcs`` (serial or fanned out)."""
        if self.jobs > 1 and len(funcs) > 1:
            funcs = self._visit_parallel(funcs)
        for func in funcs:
            if self._optimize(func) is _UNRESOLVED:
                self.unresolved.add(func.name)

    def _precheck(self, func: Function):
        """The cheap skip layers (version, memo).  Returns
        ``(skipped, entry_fp)``; ``entry_fp`` is the fingerprint already
        computed for the memo probe, reusable by the caller."""
        versions = _FIXPOINT.get(func)
        if versions is not None and \
                versions.get(self._token) == func.version:
            obs.count("opt.manager.skipped")
            obs.event("opt.skip", scope="function",
                      function=func.name, reason="version")
            return True, None
        entry_fp = None
        if self._memo_on:
            entry_fp = function_fingerprint(func)
            if _memo_get((self._token, entry_fp)):
                self._record_fixpoint(func)
                obs.count("opt.manager.skipped")
                obs.count("opt.manager.memo_hits")
                obs.event("opt.memo_hit", function=func.name)
                return True, entry_fp
        return False, entry_fp

    def _optimize(self, func: Function) -> int:
        skipped, entry_fp = self._precheck(func)
        if skipped:
            return _SKIPPED
        fixed, changed_any = _run_rounds(func, self.passes, self.rounds,
                                         self._rec)
        if not fixed:
            return _UNRESOLVED
        self._record_fixpoint(func)
        if self._memo_on:
            fp = function_fingerprint(func) if changed_any else entry_fp
            _memo_add((self._token, fp))
        return _FIXED

    def _visit_parallel(self, funcs: list[Function]) -> list[Function]:
        """Fan one sweep out over the shared fork pool.

        The parent runs the skip layers (they need its tracking state),
        ships only the survivors to workers, and installs the returned
        functions *in worklist order* — the merge, the fixpoint records,
        and the memo inserts are all parent-side and deterministic, so
        output is byte-identical to a serial sweep.  Returns the
        functions that still need a serial visit (all of them when no
        pool is available, none on success).
        """
        work = [func for func in funcs if not self._precheck(func)[0]]
        if len(work) <= 1:
            return work
        observe = obs.enabled()
        try:
            pool = _acquire_opt_pool(self.jobs, self.module, observe,
                                     len(work))
        except Exception:
            return work
        tasks = [(func.name, self.schedule_key, self.rounds)
                 for func in work]
        results: dict[str, tuple] = {}
        try:
            futures = [pool.submit(_opt_worker, task) for task in tasks]
            for future in as_completed(futures):
                name, fixed, changed_any, fp, blob, payload = \
                    future.result()
                results[name] = (fixed, changed_any, fp, blob, payload)
        except Exception:
            # Broken pool / unpicklable function: the module is still
            # untouched (installs happen below), so a serial sweep over
            # the same work list computes identical results.
            _invalidate_opt_pool()
            return work
        module = self.module
        for func in work:
            fixed, changed_any, fp, blob, payload = results[func.name]
            obs.merge_payload(payload)
            obs.count("opt.manager.parallel_visits")
            if changed_any and blob is not None:
                func = _loads_function(blob)
                module.functions[func.name] = func
            if not fixed:
                # Round budget ran out while the worker's copy was
                # still changing: record it unresolved and keep the
                # partial result OUT of the memo (see the memo-
                # poisoning regression test).
                self.unresolved.add(func.name)
                continue
            self._record_fixpoint(func)
            if self._memo_on and fp is not None:
                _memo_add((self._token, fp))
        return []

    def _record_fixpoint(self, func: Function) -> None:
        versions = _FIXPOINT.get(func)
        if versions is None:
            versions = _FIXPOINT[func] = {}
        versions[self._token] = func.version

    def _run_inline(self) -> set[str]:
        module = self.module
        rec = self._rec
        if rec is None:
            return inline.inline_functions_tracked(
                module, max_callee_size=self.inline_threshold)
        registry = rec.registry
        before = sum(_ninstrs(f) for f in module.functions.values())
        start = time.perf_counter()
        changed = inline.inline_functions_tracked(
            module, max_callee_size=self.inline_threshold)
        registry.timer("opt.pass.inline").add(
            time.perf_counter() - start)
        registry.count("opt.pass.inline.runs")
        delta = before - sum(_ninstrs(f)
                             for f in module.functions.values())
        if delta:
            registry.count("opt.pass.inline.instrs_removed", delta)
        return changed


def _ninstrs(func: Function) -> int:
    return sum(len(b.instrs) for b in func.blocks)


# -- entry points --------------------------------------------------------

def run_worklist(module: Module, opts, jobs: int | None = None) -> None:
    """Worklist-optimize ``module`` under ``opts`` (an
    :class:`~repro.opt.pipeline.OptOptions`); the incremental
    counterpart of the legacy ``optimize_module`` schedule, including
    the final unused-function sweep.  ``jobs`` (default:
    ``$REPRO_OPT_JOBS``) fans per-function visits over the fork pool;
    the output is byte-identical to serial."""
    manager = PassManager(
        module, build_function_pipeline(opts, module),
        ("opt", opts), opts.rounds,
        inline_threshold=opts.inline_threshold if opts.inline else None,
        jobs=_resolve_jobs(jobs))
    manager.run()
    drop_unused_private_functions(module)
    manager.record_module_fixpoint()


def canonicalize_module(module: Module, jobs: int | None = None) -> None:
    """The driver's canonicalization stage (SSA-ify vcpu registers,
    fold address arithmetic) as a managed one-round schedule, so
    re-canonicalizing an unchanged function after a no-op refinement
    stage costs one version check.  ``REPRO_PASS_BASELINE=1`` restores
    the legacy per-function loop."""
    if pass_baseline_enabled():
        for func in module.functions.values():
            simplifycfg.simplify_cfg(func)
            mem2reg.promote_allocas(func)
            constfold.fold_constants(func)
            flagfuse.fuse_flags(func)
            constfold.fold_constants(func)
            gvn.global_value_numbering(func)
            dce.eliminate_dead_code(func)
            simplifycfg.simplify_cfg(func)
        return
    PassManager(module, build_canonicalize_pipeline(module),
                ("canonicalize",), rounds=1,
                jobs=_resolve_jobs(jobs)).run()


def drop_unused_private_functions(module: Module) -> None:
    """Remove functions unreachable from the module's roots
    (post-inlining).

    Roots are the entry function, every address-table target, and every
    function named by a global initializer; reachability is *transitive*
    over call/operand references from live functions only, so
    mutually-recursive dead functions — which keep each other alive
    under a flat all-references scan — are dropped together.
    """
    roots: set[str] = set()
    if module.entry_name in module.functions:
        roots.add(module.entry_name)
    roots.update(name for name in module.address_table.values()
                 if name in module.functions)
    for g in module.globals.values():
        if isinstance(g.init, list):
            for word in g.init:
                name = getattr(word, "name", None)
                if isinstance(name, str) and name in module.functions:
                    roots.add(name)
    live: set[str] = set()
    work = list(roots)
    while work:
        name = work.pop()
        if name in live:
            continue
        live.add(name)
        for instr in module.functions[name].instructions():
            for op in instr.operands():
                ref = getattr(op, "name", None)
                if isinstance(ref, str) and ref not in live \
                        and ref in module.functions:
                    work.append(ref)
    module.functions = {name: f for name, f in module.functions.items()
                        if name in live}
