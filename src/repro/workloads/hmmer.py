"""hmmer stand-in: profile-HMM sequence scoring — Viterbi dynamic
programming with match/insert/delete states over stack-allocated score
rows (the DP-kernel stack idiom the paper's hmmer rows exercise)."""

from __future__ import annotations

from .base import Workload, deterministic_bytes

SOURCE = r"""
int match_score[64][4];
int profile_len;

char sequence[256];
int seq_len;

void build_profile(int length, int seed) {
    profile_len = length;
    int s = seed;
    int i;
    for (i = 0; i < length; i++) {
        int k;
        for (k = 0; k < 4; k++) {
            s = (s * 1103515245 + 12345) & 2147483647;
            match_score[i][k] = (s % 11) - 3;
        }
    }
}

int max2(int a, int b) { return a > b ? a : b; }

int viterbi() {
    int prev_m[65]; int prev_i[65]; int prev_d[65];
    int cur_m[65];  int cur_i[65];  int cur_d[65];
    int j;
    int NEG = -100000;
    for (j = 0; j <= profile_len; j++) {
        prev_m[j] = NEG; prev_i[j] = NEG; prev_d[j] = NEG;
    }
    prev_m[0] = 0;
    int best = NEG;
    int i;
    for (i = 1; i <= seq_len; i++) {
        int symbol = sequence[i - 1] & 3;
        cur_m[0] = NEG; cur_i[0] = prev_m[0] - 2; cur_d[0] = NEG;
        for (j = 1; j <= profile_len; j++) {
            int emit = match_score[j - 1][symbol];
            int m = max2(prev_m[j - 1],
                         max2(prev_i[j - 1], prev_d[j - 1])) + emit;
            int ins = max2(prev_m[j] - 3, prev_i[j] - 1);
            int del = max2(cur_m[j - 1] - 3, cur_d[j - 1] - 1);
            cur_m[j] = m;
            cur_i[j] = ins;
            cur_d[j] = del;
        }
        if (cur_m[profile_len] > best) best = cur_m[profile_len];
        for (j = 0; j <= profile_len; j++) {
            prev_m[j] = cur_m[j];
            prev_i[j] = cur_i[j];
            prev_d[j] = cur_d[j];
        }
    }
    return best;
}

int main() {
    int plen = read_int();
    int seed = read_int();
    build_profile(plen, seed);
    int nseq = 0;
    int total = 0;
    while (1) {
        int n = read_buf(sequence, 255);
        if (n <= 0) break;
        seq_len = n;
        int score = viterbi();
        nseq = nseq + 1;
        total = total + score;
        printf("seq %d (len %d): score %d\n", nseq, n, score);
    }
    printf("%d sequences, total score %d\n", nseq, total);
    return 0;
}
"""

WORKLOAD = Workload(
    name="hmmer",
    source=SOURCE,
    ref_inputs=(
        (18, 777,
         deterministic_bytes(44, 3),
         deterministic_bytes(32, 11)),
    ),
    description="profile HMM scoring: Viterbi DP over stack rows",
)
