"""Two-pass assembler and linker for the repro ISA.

Takes an :class:`AsmProgram` (functions of labelled instruction lists plus
data items) and produces a loadable :class:`~repro.binary.image.BinaryImage`.
Labels are global; compilers mangle block-local labels with the function
name (``f.L3``) to keep them unique.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..binary.image import BinaryImage, FrameGroundTruth, Section, TEXT_BASE
from ..errors import AsmError
from . import encoding
from .instructions import Imm, Instruction, Label, Mem, Operand

AsmItem = str | Instruction  # a label definition or an instruction


@dataclass
class AsmFunction:
    """A function body: a flat list of labels and instructions."""

    name: str
    items: list[AsmItem] = field(default_factory=list)

    def label(self, name: str) -> None:
        self.items.append(name)

    def emit(self, instr: Instruction) -> None:
        self.items.append(instr)


@dataclass
class DataItem:
    """A datum in the data section.

    ``payload`` is either raw bytes or a list of 32-bit words, where each
    word may be an int or a :class:`Label` (for jump tables / function
    pointer tables).
    """

    name: str
    payload: bytes | list[int | Label]
    align: int = 4
    writable: bool = True
    #: Pin this datum at an absolute address (its own section) -- used by
    #: recompiled binaries to keep original data where the input binary
    #: had it.
    fixed_addr: int | None = None


@dataclass
class AsmProgram:
    """A whole program ready for assembly."""

    functions: list[AsmFunction] = field(default_factory=list)
    data: list[DataItem] = field(default_factory=list)
    imports: list[str] = field(default_factory=list)
    entry: str = "_start"
    text_base: int = TEXT_BASE
    ground_truth: list[FrameGroundTruth] = field(default_factory=list)
    metadata: dict[str, str] = field(default_factory=dict)


def _placeholder(op: Operand) -> Operand:
    """Replace label references with dummies so sizes can be computed."""
    if isinstance(op, Label):
        return Imm(0)
    if isinstance(op, Mem) and isinstance(op.disp, Label):
        return Mem(op.base, op.index, op.scale, 0, op.size)
    return op


def _resolve(op: Operand, symbols: dict[str, int]) -> Operand:
    if isinstance(op, Label):
        try:
            return Imm(symbols[op.name] + op.addend)
        except KeyError:
            raise AsmError(f"undefined label {op.name!r}") from None
    if isinstance(op, Mem) and isinstance(op.disp, Label):
        try:
            return Mem(op.base, op.index, op.scale,
                       symbols[op.disp.name] + op.disp.addend, op.size)
        except KeyError:
            raise AsmError(f"undefined label {op.disp.name!r}") from None
    return op


def _align(addr: int, alignment: int) -> int:
    return (addr + alignment - 1) & ~(alignment - 1)


def assemble(program: AsmProgram) -> BinaryImage:
    """Assemble and link ``program`` into a runnable binary image."""
    import_index = {name: i for i, name in enumerate(program.imports)}
    symbols: dict[str, int] = {}

    # Pass 1: place every instruction, learning sizes from placeholder
    # encodings (operand sizes do not depend on label values).
    addr = program.text_base
    placed: list[Instruction] = []
    for func in program.functions:
        if func.name in symbols:
            raise AsmError(f"duplicate function {func.name!r}")
        symbols[func.name] = addr
        for item in func.items:
            if isinstance(item, str):
                if item in symbols:
                    raise AsmError(f"duplicate label {item!r}")
                symbols[item] = addr
            else:
                ops = tuple(_placeholder(o) for o in item.operands)
                probe = Instruction(item.mnemonic, ops, cc=item.cc)
                size = len(encoding.encode(probe, import_index))
                item.addr = addr
                item.size = size
                addr += size
                placed.append(item)
    text_end = addr

    # Place data items after the text section; pinned items become their
    # own sections at their fixed addresses.
    data_base = _align(text_end, 16)
    addr = data_base
    placements: list[tuple[DataItem, int, int]] = []  # item, addr, size
    pinned: list[tuple[DataItem, int]] = []
    for item in program.data:
        if item.name in symbols:
            raise AsmError(f"duplicate data symbol {item.name!r}")
        size = (len(item.payload) if isinstance(item.payload, bytes)
                else 4 * len(item.payload))
        if item.fixed_addr is not None:
            symbols[item.name] = item.fixed_addr
            pinned.append((item, size))
            continue
        addr = _align(addr, item.align)
        symbols[item.name] = addr
        placements.append((item, addr, size))
        addr += size

    # Pass 2: resolve labels and emit final bytes.
    text = bytearray()
    for instr in placed:
        ops = tuple(_resolve(o, symbols) for o in instr.operands)
        final = Instruction(instr.mnemonic, ops, cc=instr.cc)
        raw = encoding.encode(final, import_index)
        if len(raw) != instr.size:
            raise AsmError(f"size drift assembling {instr!r}")
        text += raw

    def render(item: DataItem, size: int) -> bytes:
        if isinstance(item.payload, bytes):
            return item.payload
        out = bytearray()
        for word in item.payload:
            if isinstance(word, Label):
                try:
                    value = symbols[word.name] + word.addend
                except KeyError:
                    raise AsmError(
                        f"undefined label {word.name!r} in data "
                        f"{item.name!r}") from None
            else:
                value = word
            out += (value & 0xFFFFFFFF).to_bytes(4, "little")
        return bytes(out)

    data = bytearray(addr - data_base)
    for item, base, size in placements:
        payload = render(item, size)
        data[base - data_base:base - data_base + len(payload)] = payload

    extra_sections = [
        Section(item.name, item.fixed_addr, render(item, size),
                writable=item.writable)
        for item, size in pinned
    ]

    if program.entry not in symbols:
        raise AsmError(f"entry symbol {program.entry!r} undefined")

    image = BinaryImage(
        text=Section(".text", program.text_base, bytes(text)),
        data_sections=(
            ([Section(".data", data_base, bytes(data), writable=True)]
             if data else []) + extra_sections),
        entry=symbols[program.entry],
        imports=list(program.imports),
        symbols=dict(symbols),
        ground_truth=[
            FrameGroundTruth(g.func_name, symbols.get(g.func_name, g.entry),
                             g.frame_size, g.objects)
            for g in program.ground_truth
        ],
        metadata=dict(program.metadata),
    )
    image.validate()
    return image
