"""Binary image container: sections, symbols, serialization."""

import pytest

from repro.binary.image import (
    BinaryImage,
    FrameGroundTruth,
    Section,
    StackObject,
)
from repro.errors import LinkError


def build():
    return BinaryImage(
        text=Section(".text", 0x1000, b"\x01\x02\x03"),
        data_sections=[Section(".data", 0x2000, b"abc", writable=True)],
        entry=0x1000,
        imports=["printf"],
        symbols={"main": 0x1000},
        ground_truth=[FrameGroundTruth("main", 0x1000, 16, [
            StackObject("x", -8, 4), StackObject("buf", -16, 8)])],
        metadata={"compiler": "gcc12"},
    )


def test_section_lookup():
    image = build()
    assert image.section_at(0x1001).name == ".text"
    assert image.section_at(0x2002).name == ".data"
    assert image.section_at(0x3000) is None


def test_symbol_for():
    assert build().symbol_for(0x1000) == "main"
    assert build().symbol_for(0x9999) is None


def test_validate_rejects_overlap():
    image = build()
    image.data_sections.append(Section("bad", 0x1001, b"zz"))
    with pytest.raises(LinkError):
        image.validate()


def test_validate_rejects_entry_outside_text():
    image = build()
    image.entry = 0x2000
    with pytest.raises(LinkError):
        image.validate()


def test_stripped_removes_symbols_and_ground_truth():
    stripped = build().stripped()
    assert stripped.symbols == {}
    assert stripped.ground_truth == []
    assert stripped.text.data == b"\x01\x02\x03"
    assert stripped.metadata["compiler"] == "gcc12"


def test_json_round_trip():
    image = build()
    restored = BinaryImage.from_json(image.to_json())
    assert restored.text.data == image.text.data
    assert restored.entry == image.entry
    assert restored.imports == image.imports
    assert restored.symbols == image.symbols
    gt = restored.ground_truth[0]
    assert gt.func_name == "main" and gt.frame_size == 16
    assert gt.objects[1].offset == -16 and gt.objects[1].size == 8


def test_stack_object_overlap():
    obj = StackObject("x", -8, 4)
    assert obj.overlaps(-10, -6)
    assert obj.overlaps(-5, 0)
    assert not obj.overlaps(-4, 0)
    assert not obj.overlaps(-16, -8)
