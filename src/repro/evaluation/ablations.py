"""Ablation study: which design choices carry the speedup?

DESIGN.md calls out four mechanisms beyond symbolization itself; each is
disabled in isolation and the recompiled runtime re-measured:

* ``no-flag-fusion`` — keep the lifted EFLAGS trees (no instcombine-style
  refolding into comparisons);
* ``no-dae`` — keep dead register results/arguments in lifted signatures
  (no dead-argument elimination);
* ``no-phi-promotion`` — backend places loop-carried values in frame
  slots instead of dedicated callee-saved registers;
* ``no-addr-folding`` — backend materializes every address instead of
  folding into memory operands.

Everything else (tracing, refinements, symbolization) stays identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.driver import wytiwyg_lift
from ..emu.machine import run_binary
from ..emu.tracer import trace_binary
from ..ir.module import Module
from ..opt.dce import eliminate_dead_code
from ..opt.constfold import fold_constants
from ..opt.dse import eliminate_dead_stores
from ..opt.flagfuse import fuse_flags
from ..opt.gvn import eliminate_redundant_loads, global_value_numbering
from ..opt.inline import inline_functions
from ..opt.mem2reg import promote_allocas
from ..opt.deadargelim import shrink_signatures
from ..opt.simplifycfg import simplify_cfg
from ..recompile.link import recompile_ir
from ..recompile.lower import LowerOptions
from ..workloads import WORKLOADS

ABLATIONS = ("full", "no-flag-fusion", "no-dae", "no-phi-promotion",
             "no-addr-folding")


def _optimize(module: Module, flag_fusion: bool, dae: bool) -> None:
    for _ in range(3):
        for func in module.functions.values():
            simplify_cfg(func)
            promote_allocas(func)
            fold_constants(func)
            if flag_fusion:
                fuse_flags(func)
                fold_constants(func)
            global_value_numbering(func)
            eliminate_redundant_loads(func, module)
            eliminate_dead_stores(func, module)
            eliminate_dead_code(func)
            simplify_cfg(func)
        if dae:
            shrink_signatures(module)
    inline_functions(module, max_callee_size=80)
    for func in module.functions.values():
        simplify_cfg(func)
        promote_allocas(func)
        fold_constants(func)
        eliminate_dead_code(func)


@dataclass
class AblationReport:
    workload: str
    compiler: str
    opt_level: str
    native_cycles: int = 0
    #: ablation name -> recompiled cycles
    cycles: dict = field(default_factory=dict)

    def ratios(self) -> dict:
        return {name: cycles / self.native_cycles
                for name, cycles in self.cycles.items()}

    def render(self) -> str:
        lines = [f"{self.workload} ({self.compiler}-O{self.opt_level}), "
                 f"normalized runtime:"]
        for name, ratio in self.ratios().items():
            lines.append(f"  {name:>18s}: {ratio:.2f}x")
        return "\n".join(lines)


def run_ablation(workload_name: str, compiler: str = "gcc12",
                 opt_level: str = "3") -> AblationReport:
    workload = WORKLOADS[workload_name]
    image = workload.compile(compiler, opt_level)
    inputs = workload.inputs()
    report = AblationReport(workload_name, compiler, opt_level)
    report.native_cycles = sum(
        run_binary(image, items).cycles for items in inputs)

    traces = trace_binary(image.stripped(), inputs)
    for name in ABLATIONS:
        module, _layouts, _notes, _report = wytiwyg_lift(traces)
        _optimize(module,
                  flag_fusion=(name != "no-flag-fusion"),
                  dae=(name != "no-dae"))
        lower = LowerOptions(
            frame_pointer=False,
            promote_phis=(name != "no-phi-promotion"),
            fold_chains=(name != "no-addr-folding"))
        recovered = recompile_ir(module, lower)
        cycles = 0
        for items in inputs:
            result = run_binary(recovered, items)
            expected = run_binary(image, items)
            if result.stdout != expected.stdout:
                raise AssertionError(
                    f"{workload_name}/{name}: ablated binary diverged")
            cycles += result.cycles
        report.cycles[name] = cycles
    return report
