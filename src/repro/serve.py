"""repro.serve — recompilation as a service.

A long-lived daemon (``python -m repro serve``) that accepts
recompilation jobs over a local Unix socket, runs them through the
store-backed incremental pipeline
(:func:`repro.core.incremental.incremental_recompile`), and accumulates
per-image input sets as named **campaigns** (the BinRec model: every
submission grows the campaign's traced input set, so coverage only ever
improves).

Why a daemon beats N one-shot processes:

* the content-addressed :class:`~repro.store.ArtifactStore` persists
  traces and results across requests (and across daemon restarts);
* the serving processes stay warm: the optimizer's cross-stage
  fingerprint memo, the lowering cache, and the shared replay
  :class:`~repro.parallel.ForkPool` all survive between jobs, so an
  input addition re-refines only the functions whose fingerprint
  moved;
* with ``--workers N`` jobs execute on a pool of long-lived worker
  processes (:mod:`repro.sched`): distinct images recompile
  concurrently, repeat requests for one image are routed to the worker
  whose caches are already warm for it (image-affinity dispatch with
  work-stealing fallback), and a bounded queue applies backpressure.
  Without ``--workers`` (the default) jobs serialize on one in-process
  lock exactly as before — the two modes produce byte-identical
  artifacts because every reuse layer is content-pinned.

Protocol: line-delimited JSON — one request object per line, one
response object per line, over ``AF_UNIX``.  Requests carry an ``op``:

``ping``      liveness probe -> ``{"ok": true, "pid": ...}``
``submit``    run a job: ``image`` (path) or ``image_json`` (inline),
              ``inputs`` (list of runs; items are ints or
              ``{"b": "latin-1 bytes"}``), optional ``campaign``,
              ``options`` (``optimize``/``check``/``static_widen``/
              ``hybrid``), ``output`` (path for the recovered image)
              and ``return_artifact`` (inline the recovered JSON).
``status``    daemon counters + store stats + campaign list (+
              scheduler snapshot under ``sched`` in pool mode)
``campaign``  one campaign's summary (``name``)
``shutdown``  stop the daemon (responds first, drains in-flight jobs,
              then exits; new submits are rejected during the drain)

Responses are ``{"ok": true, ...}`` or ``{"ok": false, "error": msg,
"kind": ExceptionName}`` — a backpressure rejection additionally
carries ``retry_after`` seconds.  The full schema is documented in
DESIGN.md.

Observability: ledger events ``job.submitted`` / ``job.started`` /
``job.finished`` (plus ``job.timeout`` and the ``sched.*`` dispatch
stream in pool mode), a ``job.execute`` span per job, and the store's
``store.hit`` / ``store.miss`` / ``store.put`` stream — ``repro obs
diff`` over two reports shows exactly what a warm run reused.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import socket
import socketserver
import threading
from pathlib import Path

from . import obs
from .binary.image import BinaryImage
from .core.incremental import warm_stats
from .errors import RemoteJobError, ServeError
from .parallel import ForkPool
from .sched import JobScheduler, execute_job
from .store import ArtifactStore, decode_runs, encode_runs, image_key

__all__ = ["RecompileServer", "ServeClient", "serve_forever"]

log = logging.getLogger("repro.serve")

#: Protocol revision, echoed by ``ping`` so clients can detect drift.
PROTOCOL_VERSION = 1

#: Largest accepted request line (a 4 MB image JSON fits comfortably).
MAX_REQUEST_BYTES = 64 * 1024 * 1024


def _limit_text(limit: int) -> str:
    if limit % (1024 * 1024) == 0:
        return f"{limit // (1024 * 1024)} MB"
    return f"{limit} byte"


class RecompileServer:
    """The daemon: a threading Unix-socket server plus a job scheduler.

    One instance per socket path.  Connections are handled on threads.
    Job execution is either serialized on :attr:`_job_lock` (default:
    the in-process caches the incremental pipeline relies on are
    process-global) or dispatched to a :class:`~repro.sched.
    JobScheduler` worker pool (``workers >= 1``), where each worker
    holds its own warm state and campaigns serialize per-name only.
    """

    def __init__(self, socket_path: str | Path,
                 store: ArtifactStore | str | Path | None = None,
                 jobs: int = 1, opt_jobs: int | None = None,
                 workers: int = 0, queue_depth: int | None = None,
                 job_timeout: float | None = None):
        self.socket_path = Path(socket_path)
        if isinstance(store, ArtifactStore):
            self.store = store
        else:
            self.store = ArtifactStore(store)
        self.jobs = max(1, int(jobs))
        self.opt_jobs = opt_jobs
        self.workers = max(0, int(workers))
        self.max_request_bytes = MAX_REQUEST_BYTES
        if job_timeout is not None and self.workers < 1:
            raise ServeError(
                "a per-job wall-clock limit needs the worker pool "
                "(use workers >= 1): an in-process job cannot be "
                "killed mid-flight")
        self.sched: JobScheduler | None = None
        if self.workers >= 1:
            try:
                self.sched = JobScheduler(
                    self.workers, store_root=self.store.root,
                    jobs=self.jobs, opt_jobs=opt_jobs,
                    max_depth=queue_depth, job_timeout=job_timeout)
            except ValueError:
                # No fork start method on this platform: fall back to
                # the single-lock mode, which computes the same thing.
                log.warning("worker pool unavailable (no fork start "
                            "method); serving single-lock")
                self.workers = 0
        #: Replay fork pool shared across requests in single-lock mode
        #: (scheduler workers each own one instead).
        self.replay_pool = (ForkPool(self.jobs)
                            if self.jobs > 1 and self.sched is None
                            else None)
        self._job_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._campaign_locks: dict[str, threading.Lock] = {}
        self._job_seq = 0
        self.stats = {"jobs": 0, "served_store": 0,
                      "served_incremental": 0, "served_cold": 0,
                      "errors": 0}
        self._server: socketserver.BaseServer | None = None
        self._shutdown = threading.Event()

    # -- lifecycle -------------------------------------------------------

    def serve_forever(self) -> None:
        """Bind the socket and serve until :meth:`shutdown`."""
        if self.socket_path.exists():
            # A stale socket from a crashed daemon: refuse to steal a
            # live one, silently replace a dead one.
            if self._socket_alive():
                raise ServeError(
                    f"another daemon is serving {self.socket_path}")
            self.socket_path.unlink()
        if self.sched is not None:
            # Fork the worker pool before any handler threads exist.
            self.sched.start()
        outer = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self):
                outer._handle_connection(self)

        class Server(socketserver.ThreadingMixIn,
                     socketserver.UnixStreamServer):
            daemon_threads = True
            allow_reuse_address = True

        self._server = Server(str(self.socket_path), Handler)
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self.close()

    def _socket_alive(self) -> bool:
        try:
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(0.5)
            probe.connect(str(self.socket_path))
            probe.close()
            return True
        except OSError:
            return False

    def shutdown(self) -> None:
        """Stop accepting jobs, drain the scheduler, stop the accept
        loop (callable from handler threads).  Submissions that arrive
        during the drain are rejected with a clean error; jobs already
        queued or running complete and their responses are written."""
        self._shutdown.set()

        def _stop():
            if self.sched is not None:
                try:
                    self.sched.close(drain=True)
                except Exception:
                    pass
            server = self._server
            if server is not None:
                server.shutdown()

        threading.Thread(target=_stop, daemon=True).start()

    def close(self) -> None:
        if self.sched is not None:
            self.sched.close(drain=False)
        if self.replay_pool is not None:
            self.replay_pool.close()
        try:
            self.socket_path.unlink()
        except OSError:
            pass

    # -- connection handling ---------------------------------------------

    def _handle_connection(self, handler) -> None:
        while True:
            limit = self.max_request_bytes
            line = handler.rfile.readline(limit + 1)
            if not line:
                return
            if len(line) > limit:
                # ``readline`` stopped mid-line: the request exceeds
                # the cap and everything still in the stream is the
                # tail of the same line, so there is no way to resync —
                # report clearly and drop the connection.  (Without
                # this check the truncated prefix would surface as a
                # baffling JSONDecodeError.)
                with self._state_lock:
                    self.stats["errors"] += 1
                self._respond(handler, {
                    "ok": False, "kind": "ServeError",
                    "error": f"request exceeds the "
                             f"{_limit_text(limit)} limit"})
                return
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ServeError("request must be a JSON object")
                response = self.dispatch(request)
            except Exception as exc:  # the daemon must not die
                with self._state_lock:
                    self.stats["errors"] += 1
                response = {
                    "ok": False, "error": str(exc),
                    "kind": getattr(exc, "remote_kind",
                                    type(exc).__name__)}
                retry = getattr(exc, "retry_after", None)
                if retry is not None:
                    response["retry_after"] = round(retry, 1)
            self._respond(handler, response)
            if response.get("op") == "shutdown" and response.get("ok"):
                self.shutdown()
                return

    @staticmethod
    def _respond(handler, response: dict) -> None:
        handler.wfile.write(
            (json.dumps(response, default=repr) + "\n").encode())
        handler.wfile.flush()

    def dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "op": "ping", "pid": os.getpid(),
                    "protocol": PROTOCOL_VERSION,
                    "workers": self.workers}
        if op == "status":
            with self._state_lock:
                stats = dict(self.stats)
            doc = {"ok": True, "op": "status", "jobs": self.jobs,
                   "workers": self.workers,
                   "stats": stats, "store": dict(self.store.stats),
                   "store_root": str(self.store.root),
                   "campaigns": self.store.list_campaigns(),
                   "warm": warm_stats()}
            if self.sched is not None:
                doc["sched"] = self.sched.snapshot()
            return doc
        if op == "campaign":
            name = request.get("name")
            campaign = self.store.load_campaign(name) if name else None
            if campaign is None:
                raise ServeError(f"unknown campaign {name!r}")
            return {"ok": True, "op": "campaign",
                    "campaign": campaign.to_dict()}
        if op == "shutdown":
            return {"ok": True, "op": "shutdown"}
        if op == "submit":
            return self._submit(request)
        raise ServeError(f"unknown op {op!r}")

    # -- jobs ------------------------------------------------------------

    def _load_image(self, request: dict,
                    campaign) -> tuple[BinaryImage, str]:
        if request.get("image_json"):
            image = BinaryImage.from_json(request["image_json"])
        elif request.get("image"):
            image = BinaryImage.from_json(
                Path(request["image"]).read_text())
        elif campaign is not None:
            src = self.store.get("source", campaign.image_key)
            if src is None:
                raise ServeError(
                    f"campaign {campaign.name!r} has no stored image; "
                    f"resubmit with 'image'")
            return BinaryImage.from_json(src), campaign.image_key
        else:
            raise ServeError("submit needs 'image' or 'image_json'")
        key = image_key(image)
        # Persist the source so campaign resubmissions can omit it.
        if not self.store.contains("source", key):
            self.store.put("source", key, image.to_json())
        return image, key

    def _campaign_mutex(self, name: str) -> threading.Lock:
        with self._state_lock:
            lock = self._campaign_locks.get(name)
            if lock is None:
                lock = self._campaign_locks[name] = threading.Lock()
            return lock

    def _submit(self, request: dict) -> dict:
        if self._shutdown.is_set():
            raise ServeError("daemon is shutting down; job rejected")
        with self._state_lock:
            self._job_seq += 1
            job_id = self._job_seq
        runs = decode_runs(request.get("inputs", []))
        campaign_name = request.get("campaign")
        options = request.get("options") or {}
        obs.event("job.submitted", job=job_id,
                  campaign=campaign_name, inputs=len(runs))
        obs.count("serve.jobs.submitted")
        # Single-lock mode serializes whole jobs.  Pool mode only
        # serializes same-campaign submissions (the accumulate-then-run
        # contract needs it); distinct images run fully concurrently.
        if self.sched is None:
            guard = self._job_lock
        elif campaign_name:
            guard = self._campaign_mutex(campaign_name)
        else:
            guard = contextlib.nullcontext()
        with guard:
            campaign = (self.store.load_campaign(campaign_name)
                        if campaign_name else None)
            if campaign_name and campaign is None and not runs \
                    and not (request.get("image")
                             or request.get("image_json")):
                raise ServeError(
                    f"new campaign {campaign_name!r} needs an image "
                    f"and at least one input")
            image, img_key = self._load_image(request, campaign)
            if campaign_name:
                if campaign is None:
                    from .store import Campaign
                    campaign = Campaign(name=campaign_name,
                                        image_key=img_key)
                elif campaign.image_key != img_key:
                    raise ServeError(
                        f"campaign {campaign_name!r} is bound to image "
                        f"{campaign.image_key}, got {img_key}")
                campaign.add_inputs(runs)
                # Jobs run over the accumulated set: coverage grows
                # monotonically across submissions.
                runs = [list(items) for items in campaign.inputs]
                if not runs:
                    raise ServeError(
                        f"campaign {campaign_name!r} has no inputs")
            if not runs:
                raise ServeError("submit needs at least one input run")
            spec = {
                "op": "recompile", "job": job_id,
                "image_key": img_key,
                "inputs": encode_runs(runs),
                "options": options,
                "output": request.get("output"),
                "return_artifact": bool(request.get("return_artifact")),
            }
            obs.event("job.started", job=job_id, image=img_key,
                      campaign=campaign_name, inputs=len(runs))
            with obs.span("job.execute", job=job_id,
                          campaign=campaign_name or "",
                          inputs=len(runs)) as sp:
                if self.sched is None:
                    result = execute_job(
                        spec, self.store, jobs=self.jobs,
                        opt_jobs=self.opt_jobs,
                        replay_pool=self.replay_pool, image=image)
                    result["ok"] = True
                else:
                    spec["image_json"] = image.to_json()
                    result = self.sched.submit(spec)
                    if not result.get("ok"):
                        raise RemoteJobError(
                            result.get("error", "job failed"),
                            remote_kind=result.get("kind",
                                                   "RemoteJobError"))
                if obs.enabled():
                    sp.set(worker=result.get("worker", -1),
                           **result["stats"])
            with self._state_lock:
                self.stats["jobs"] += 1
                self.stats[f"served_{result['served']}"] += 1
            if campaign_name:
                campaign.jobs += 1
                campaign.coverage = dict(result["coverage"])
                self.store.save_campaign(campaign)
            obs.count(f"serve.jobs.{result['served']}")
        obs.event("job.finished", job=job_id, **result["stats"])
        response: dict = {
            "ok": True, "op": "submit", "job": job_id,
            "served": result["served"],
            "stats": result["stats"],
            "image_key": result["image_key"],
            "result_key": result["result_key"],
            "fallback": result["fallback"],
            "notes": result["notes"],
            "coverage": result["coverage"],
        }
        if result.get("worker") is not None:
            response["worker"] = result["worker"]
        if campaign_name:
            response["campaign"] = campaign.to_dict()
        if result.get("accuracy") is not None:
            response["accuracy"] = result["accuracy"]
        if result.get("output"):
            response["output"] = result["output"]
        if result.get("artifact") is not None:
            response["artifact"] = result["artifact"]
        return response


class ServeClient:
    """Line-delimited-JSON client for a :class:`RecompileServer`.

    One connection per request keeps the client trivially robust; the
    daemon holds no per-connection state.  ``timeout`` bounds the whole
    exchange (connect, send, and the wait for the response), so a
    wedged daemon produces a clean :class:`ServeError` instead of a
    hang.
    """

    def __init__(self, socket_path: str | Path, timeout: float = 600.0):
        self.socket_path = str(socket_path)
        self.timeout = timeout

    def request(self, op: str, **fields) -> dict:
        doc = {"op": op, **fields}
        try:
            conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            conn.settimeout(self.timeout)
            conn.connect(self.socket_path)
            conn.sendall((json.dumps(doc) + "\n").encode())
            chunks = []
            while True:
                chunk = conn.recv(1 << 20)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n"):
                    break
            conn.close()
        except socket.timeout as exc:
            raise ServeError(
                f"daemon at {self.socket_path} did not respond within "
                f"{self.timeout:g}s — it may be wedged, or the job is "
                f"still running (raise --timeout for long jobs)") \
                from exc
        except OSError as exc:
            raise ServeError(
                f"cannot reach daemon at {self.socket_path}: {exc}") \
                from exc
        if not chunks:
            raise ServeError("daemon closed the connection mid-request")
        response = json.loads(b"".join(chunks))
        if not response.get("ok"):
            hint = ""
            if response.get("retry_after") is not None:
                hint = f" (retry in ~{response['retry_after']:g}s)"
            raise ServeError(
                f"{response.get('kind', 'error')}: "
                f"{response.get('error', 'request failed')}{hint}")
        return response

    def ping(self) -> dict:
        return self.request("ping")

    def status(self) -> dict:
        return self.request("status")

    def campaign(self, name: str) -> dict:
        return self.request("campaign", name=name)

    def shutdown(self) -> dict:
        return self.request("shutdown")

    def submit(self, image: str | Path | None = None,
               image_json: str | None = None,
               inputs: list[list] | None = None,
               campaign: str | None = None,
               options: dict | None = None,
               output: str | None = None,
               return_artifact: bool = False) -> dict:
        fields: dict = {"inputs": encode_runs(inputs or [])}
        if image is not None:
            fields["image"] = str(image)
        if image_json is not None:
            fields["image_json"] = image_json
        if campaign is not None:
            fields["campaign"] = campaign
        if options:
            fields["options"] = options
        if output is not None:
            fields["output"] = output
        if return_artifact:
            fields["return_artifact"] = True
        return self.request("submit", **fields)


def serve_forever(socket_path: str | Path,
                  store: str | Path | None = None,
                  jobs: int = 1,
                  opt_jobs: int | None = None,
                  workers: int = 0,
                  queue_depth: int | None = None,
                  job_timeout: float | None = None) -> RecompileServer:
    """Convenience entry: build a server and block serving requests."""
    server = RecompileServer(socket_path, store=store, jobs=jobs,
                             opt_jobs=opt_jobs, workers=workers,
                             queue_depth=queue_depth,
                             job_timeout=job_timeout)
    server.serve_forever()
    return server
