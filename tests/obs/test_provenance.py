"""Layout provenance: event selection, the name grammar, and the
end-to-end ``explain`` acceptance scenario on an under-traced program."""

from pathlib import Path

import pytest

from repro import obs
from repro.cc import compile_source
from repro.core.driver import wytiwyg_recompile
from repro.obs.provenance import (explain_variable, parse_var_name,
                                  select_variables)


@pytest.fixture(autouse=True)
def _ledger_off():
    yield
    obs.disable_ledger()


def test_parse_var_name_roundtrip():
    assert parse_var_name("sv_m84") == -84
    assert parse_var_name("sv_p8") == 8
    assert parse_var_name("sv_m0") == 0
    for bad in ("sv_84", "m84", "sv_mx", "foo"):
        with pytest.raises(ValueError):
            parse_var_name(bad)


def _ev(kind, **fields):
    doc = {"v": 1, "seq": _ev.seq, "pid": 1, "kind": kind}
    _ev.seq += 1
    doc.update(fields)
    return doc


_ev.seq = 1


def test_explain_selects_overlapping_events_in_function():
    events = [
        _ev("frame.var.seed", func="f", ref_id=1, interval=[-16, -8],
            sp0_offset=-16, traced=[0, 8]),
        _ev("frame.var.seed", func="f", ref_id=2, interval=[-32, -24],
            sp0_offset=-32, traced=[0, 8]),          # other variable
        _ev("frame.var.seed", func="g", ref_id=3, interval=[-16, -8],
            sp0_offset=-16, traced=[0, 8]),          # other function
        _ev("frame.var.merge", func="f", reason="overlap",
            into=[-16, -8], absorbed=[-12, -8]),
        _ev("frame.var.widened", func="f", region=[-16, -4],
            applied=True, grew=[-16, -8], reason="static load"),
        _ev("corroborate.finding", func="f", severity="warning",
            finding="coverage-gap", offset=-8, width=4,
            message="gap", provenance=[]),
        _ev("corroborate.finding", func="f", severity="warning",
            finding="unsound-split", offset=-48, width=4,
            message="elsewhere", provenance=[]),      # no overlap
    ]
    prov = explain_variable(events, "f", (-16, -4))
    assert prov.var == "sv_m16"
    assert [e["ref_id"] for e in prov.seeds] == [1]
    assert len(prov.merges) == 1
    assert len(prov.widenings) == 1
    assert [e["finding"] for e in prov.findings] == ["coverage-gap"]
    # Chained events come back in emission order.
    assert [e["seq"] for e in prov.events] == sorted(
        e["seq"] for e in prov.events)
    text = obs.render_provenance(prov)
    assert "f:sv_m16" in text and "coverage-gap" in text
    assert "widened to cover [-16, -4)" in text


def test_locationless_findings_attach_by_function():
    events = [_ev("sanitize.finding", func="f", severity="warning",
                  finding="uninit-read", offset=None, width=None,
                  message="maybe uninit")]
    prov = explain_variable(events, "f", (-8, -4))
    assert [e["finding"] for e in prov.findings] == ["uninit-read"]


class _Var:
    def __init__(self, start, end):
        self.start, self.end = start, end

    @property
    def name(self):
        sign = "m" if self.start < 0 else "p"
        return f"sv_{sign}{abs(self.start)}"


class _Layout:
    def __init__(self, *vars_):
        self.variables = list(vars_)


def test_select_variables_spec_grammar():
    layouts = {"f": _Layout(_Var(-8, -4), _Var(-16, -8)),
               "g": _Layout(_Var(-8, -4))}
    assert [(f, v.name) for f, v in select_variables(layouts, None)] == \
        [("f", "sv_m16"), ("f", "sv_m8"), ("g", "sv_m8")]
    assert [(f, v.name) for f, v
            in select_variables(layouts, "f:sv_m8")] == [("f", "sv_m8")]
    assert [(f, v.name) for f, v
            in select_variables(layouts, "sv_m8")] == \
        [("f", "sv_m8"), ("g", "sv_m8")]
    assert [(f, v.name) for f, v in select_variables(layouts, "g")] == \
        [("g", "sv_m8")]
    with pytest.raises(ValueError, match="matches no recovered"):
        list(select_variables(layouts, "f:sv_m99"))


def test_explain_undertraced_widening_end_to_end():
    """Acceptance: on an under-traced run with widening, the explained
    variable chains the specific coverage-gap finding and the widening
    event that grew it, sourced from the ledger."""
    source = (Path(__file__).resolve().parents[2]
              / "examples" / "undertrace.c").read_text()
    image = compile_source(source, "gcc12", "3", "undertrace")
    led = obs.enable_ledger()
    result = wytiwyg_recompile(image, [[3]], optimize=False,
                               collect_accuracy=False, static_widen=True)
    func, widened = max(
        ((fname, var) for fname, layout in result.layouts.items()
         for var in layout.variables),
        key=lambda pair: pair[1].end - pair[1].start)
    prov = obs.explain_variable(led.events, func,
                                (widened.start, widened.end),
                                widened.name)
    gaps = [e for e in prov.findings if e["finding"] == "coverage-gap"]
    assert gaps and "suggest widening" in gaps[0]["message"]
    grown = [e for e in prov.widenings if e["applied"]]
    assert grown
    # The widening covers exactly the final interval of the variable.
    assert grown[0]["region"][1] == widened.end
    text = obs.render_provenance(prov)
    assert "coverage-gap" in text and "widened to cover" in text
