"""IR sanitizer suite: flow-sensitive lints over symbolized IR.

Runs after stack symbolization (recovered variables are native allocas)
and before the optimizer, extending the structural checks of
:mod:`repro.ir.verifier` with semantic lints:

* **uninit-read** — a load from a local with a path from entry on which
  no store covered the loaded bytes (must-init forward dataflow, joins
  intersect);
* **oob-access** — a constant-offset load/store that lands outside its
  recovered alloca's byte range: the dynamic layout under-sized an
  object the code provably addresses;
* **escaped-frame-pointer** — a local's address flowing into a call, a
  stored value, or a return; such allocas must not be treated as
  private by mem2reg/DSE.  The scan is written independently of
  :class:`repro.opt.alias.AliasAnalysis` and cross-checked against it:
  an alloca this pass proves escaping that alias analysis calls private
  is an ``alias-divergence`` error (the optimizer would miscompile).

A third, interprocedural corroborator rides on the same kind: the
escape summaries of :mod:`.interproc` stash each function's escaped
frame regions (with the call chain that pinned them) in
``func.meta["interproc_escapes"]`` *before* symbolization; after
symbolization those sp0-relative regions map onto allocas by the
``sv_m<off>`` naming, and an alloca the summaries mark escaped that
alias analysis still calls private is the same ``alias-divergence``
error — two independent escape analyses disagreeing about the fact the
optimizer depends on.
"""

from __future__ import annotations

import re

from ..ir.module import Block, Function, Module
from ..ir.values import (
    Alloca,
    BinOp,
    Call,
    CallExt,
    CallInd,
    Instr,
    Load,
    Phi,
    Ret,
    Store,
    Value,
)
from ..opt.alias import AliasAnalysis
from .report import (
    ALIAS_DIVERGENCE,
    ESCAPED_FRAME_POINTER,
    OOB_ACCESS,
    UNINIT_READ,
    Finding,
)

# -- byte-interval sets (sorted disjoint (lo, hi) tuples) -------------------


def _add_interval(intervals: tuple, lo: int, hi: int) -> tuple:
    if hi <= lo:
        return intervals
    merged = []
    for i_lo, i_hi in intervals:
        if i_hi < lo or hi < i_lo:
            merged.append((i_lo, i_hi))
        else:
            lo, hi = min(lo, i_lo), max(hi, i_hi)
    merged.append((lo, hi))
    return tuple(sorted(merged))


def _covers(intervals: tuple, lo: int, hi: int) -> bool:
    for i_lo, i_hi in intervals:
        if i_lo <= lo and hi <= i_hi:
            return True
    return False


def _intersect(a: tuple, b: tuple) -> tuple:
    out = []
    for a_lo, a_hi in a:
        for b_lo, b_hi in b:
            lo, hi = max(a_lo, b_lo), min(a_hi, b_hi)
            if lo < hi:
                out.append((lo, hi))
    return tuple(out)


# -- independent escape scan ------------------------------------------------


def _alloca_roots(func: Function) -> dict[Value, Alloca]:
    """Which alloca each value is derived from, tracked through
    constant and variable pointer arithmetic and phis.  Intentionally a
    separate implementation from :class:`AliasAnalysis` so the two can
    corroborate each other."""
    roots: dict[Value, Alloca] = {}
    for instr in func.instructions():
        if isinstance(instr, Alloca):
            roots[instr] = instr
    for _ in range(12):
        changed = False
        for instr in func.instructions():
            if instr in roots or not isinstance(instr, (BinOp, Phi)):
                continue
            if isinstance(instr, BinOp) \
                    and instr.opcode not in ("add", "sub"):
                continue
            ops = [op for op in instr.operands() if op is not instr]
            found = {roots[op] for op in ops if op in roots}
            if len(found) == 1:
                roots[instr] = found.pop()
                changed = True
        if not changed:
            break
    return roots


def _escape_sites(func: Function,
                  roots: dict[Value, Alloca]) -> list[tuple[Alloca,
                                                            str, Instr]]:
    sites = []
    for instr in func.instructions():
        if isinstance(instr, Store):
            root = roots.get(instr.value)
            if root is not None:
                sites.append((root, "stored as a value", instr))
        elif isinstance(instr, (Call, CallInd, CallExt)):
            for arg in instr.args:
                root = roots.get(arg)
                if root is not None:
                    sites.append((root, "passed to a call", instr))
        elif isinstance(instr, Ret):
            for op in instr.ops:
                root = roots.get(op)
                if root is not None:
                    sites.append((root, "returned", instr))
    return sites


# -- the lints --------------------------------------------------------------


def _describe(alloca: Alloca) -> str:
    return alloca.var_name or f"alloca[{alloca.size}]"


def _check_oob(func: Function, aa: AliasAnalysis) -> list[Finding]:
    findings = []
    seen = set()
    for instr in func.instructions():
        if isinstance(instr, Load):
            addr, size, kind = instr.addr, instr.size, "load"
        elif isinstance(instr, Store):
            addr, size, kind = instr.addr, instr.size, "store"
        else:
            continue
        fact = aa.fact_for(addr)
        if fact[0] != "alloca" or fact[2] is None:
            continue
        alloca, offset = fact[1], fact[2]
        if 0 <= offset and offset + size <= alloca.size:
            continue
        key = (id(alloca), offset, size, kind)
        if key in seen:
            continue
        seen.add(key)
        findings.append(Finding(
            "error", OOB_ACCESS, func.name,
            f"constant-offset {kind} [{offset}, {offset + size}) is "
            f"out of bounds for {_describe(alloca)} of "
            f"{alloca.size} bytes",
            offset=offset, width=size,
            provenance={"pass": "sanitize", "variable":
                        _describe(alloca), "alloca_size": alloca.size}))
    return findings


def _check_escapes(func: Function, aa: AliasAnalysis,
                   roots: dict[Value, Alloca]) -> list[Finding]:
    findings = []
    seen = set()
    for alloca, how, site in _escape_sites(func, roots):
        key = (id(alloca), how)
        if key in seen:
            continue
        seen.add(key)
        findings.append(Finding(
            "info", ESCAPED_FRAME_POINTER, func.name,
            f"address of {_describe(alloca)} {how} "
            f"({site!r}); mem2reg/DSE must treat it as shared",
            provenance={"pass": "sanitize",
                        "variable": _describe(alloca)}))
        if alloca not in aa.escaped:
            findings.append(Finding(
                "error", ALIAS_DIVERGENCE, func.name,
                f"{_describe(alloca)} escapes ({how}) but alias "
                f"analysis classifies it private — optimizer "
                f"assumptions are unsound",
                provenance={"pass": "sanitize",
                            "variable": _describe(alloca)}))
    return findings


_VAR_NAME_RE = re.compile(r"^sv_([mp])(\d+)$")


def _alloca_start(alloca: Alloca) -> int | None:
    """Invert the ``FrameVariable.name`` scheme (``sv_m84`` -> -84)."""
    m = _VAR_NAME_RE.match(alloca.var_name or "")
    if m is None:
        return None
    off = int(m.group(2))
    return -off if m.group(1) == "m" else off


def _check_interproc_escapes(func: Function,
                             aa: AliasAnalysis) -> list[Finding]:
    """Cross-check the interprocedural escape summaries against alias
    analysis: an alloca whose sp0-region the summaries proved escaped
    (its address flowed into a callee that dereferences it) must be in
    ``aa.escaped`` too, or the optimizer is working from an unsound
    no-alias fact."""
    regions = func.meta.get("interproc_escapes") or []
    if not regions:
        return []
    findings = []
    seen = set()
    for lo, hi, chain in regions:
        for instr in func.instructions():
            if not isinstance(instr, Alloca):
                continue
            start = _alloca_start(instr)
            if start is None:
                continue
            if start >= hi or lo >= start + instr.size:
                continue
            if instr in aa.escaped:
                continue
            key = (id(instr), tuple(chain))
            if key in seen:
                continue
            seen.add(key)
            arrow = " -> ".join(chain)
            findings.append(Finding(
                "error", ALIAS_DIVERGENCE, func.name,
                f"{_describe(instr)} escapes interprocedurally "
                f"(callee footprint [{lo}, {hi}) via {arrow}) but "
                f"alias analysis classifies it private — optimizer "
                f"assumptions are unsound",
                offset=lo, width=hi - lo,
                provenance={"pass": "interproc",
                            "variable": _describe(instr),
                            "chain": list(chain)}))
    return findings


def _check_uninit(func: Function, aa: AliasAnalysis) -> list[Finding]:
    """Must-init forward dataflow over tracked (non-escaping) allocas."""
    tracked = [i for i in func.instructions()
               if isinstance(i, Alloca) and i not in aa.escaped]
    if not tracked:
        return []
    tracked_set = set(tracked)

    def transfer_block(block: Block, state: dict,
                       findings: list | None) -> dict:
        state = dict(state)
        reported = set()
        for instr in block.instrs:
            if isinstance(instr, Store):
                fact = aa.fact_for(instr.addr)
                if fact[0] == "alloca" and fact[1] in tracked_set:
                    alloca, offset = fact[1], fact[2]
                    if offset is None:
                        # Variable-offset store: assume it may have
                        # initialized anything (anti-false-positive).
                        state[alloca] = ((0, alloca.size),)
                    else:
                        state[alloca] = _add_interval(
                            state.get(alloca, ()), offset,
                            offset + instr.size)
            elif isinstance(instr, Load) and findings is not None:
                fact = aa.fact_for(instr.addr)
                if fact[0] != "alloca" or fact[1] not in tracked_set:
                    continue
                alloca, offset = fact[1], fact[2]
                init = state.get(alloca, ())
                if offset is not None:
                    bad = not _covers(init, offset, offset + instr.size)
                else:
                    bad = not init
                key = (id(alloca), offset)
                if bad and key not in reported:
                    reported.add(key)
                    where = "" if offset is None \
                        else f" at offset {offset}"
                    findings.append(Finding(
                        "warning", UNINIT_READ, func.name,
                        f"load from {_describe(alloca)}{where} may "
                        f"read uninitialized bytes",
                        offset=offset, width=instr.size,
                        provenance={"pass": "sanitize", "variable":
                                    _describe(alloca),
                                    "block": block.name}))
        return state

    def join(a: dict | None, b: dict) -> dict:
        if a is None:
            return dict(b)
        return {alloca: _intersect(a.get(alloca, ()),
                                   b.get(alloca, ()))
                for alloca in set(a) | set(b)}

    in_states: dict[Block, dict | None] = {b: None for b in func.blocks}
    in_states[func.entry] = {}
    out_states: dict[Block, dict] = {}
    work = list(func.blocks)
    while work:
        block = work.pop(0)
        in_state = in_states[block]
        if in_state is None:
            continue
        out = transfer_block(block, in_state, None)
        if out_states.get(block) == out:
            continue
        out_states[block] = out
        if not block.is_terminated:
            continue
        for succ in block.successors():
            joined = join(in_states[succ], out)
            if joined != in_states[succ]:
                in_states[succ] = joined
                if succ not in work:
                    work.append(succ)

    findings: list[Finding] = []
    for block in func.blocks:
        in_state = in_states[block]
        if in_state is not None:
            transfer_block(block, in_state, findings)
    return findings


def sanitize_function(func: Function,
                      module: Module | None = None) -> list[Finding]:
    """All sanitizer findings for one symbolized function."""
    if not any(isinstance(i, Alloca) for i in func.instructions()):
        return []
    aa = AliasAnalysis(func, module)
    roots = _alloca_roots(func)
    findings = _check_oob(func, aa)
    findings.extend(_check_escapes(func, aa, roots))
    findings.extend(_check_interproc_escapes(func, aa))
    findings.extend(_check_uninit(func, aa))
    return findings


def sanitize_module(module: Module) -> list[Finding]:
    findings: list[Finding] = []
    for func in module.functions.values():
        findings.extend(sanitize_function(func, module))
    return findings
