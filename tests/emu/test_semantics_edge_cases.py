"""Edge-case machine semantics: wrapping, masking, byte memory."""

from repro.emu import run_binary
from repro.isa.registers import CL
from repro.isa import (
    AH,
    AL,
    AsmFunction,
    AsmProgram,
    AX,
    EAX,
    EBX,
    ECX,
    ESP,
    Imm,
    Mem,
    assemble,
    ins,
    jcc,
    Label,
    setcc,
)


def run(items):
    prog = AsmProgram(functions=[AsmFunction("_start", list(items))])
    return run_binary(assemble(prog))


def test_add_wraps_32_bits():
    r = run([
        ins("mov", EAX, Imm(0x7FFFFFFF)),
        ins("add", EAX, Imm(1)),
        ins("hlt"),
    ])
    assert r.exit_code == 0x80000000


def test_shift_count_masked_to_31():
    r = run([
        ins("mov", EAX, Imm(1)),
        ins("shl", EAX, Imm(33)),  # behaves as << 1
        ins("hlt"),
    ])
    assert r.exit_code == 2


def test_byte_memory_store_does_not_clobber_neighbours():
    r = run([
        ins("sub", ESP, Imm(8)),
        ins("mov", Mem(ESP, disp=0), Imm(0x11223344)),
        ins("mov", Mem(ESP, disp=1, size=1), Imm(0xAA)),
        ins("mov", EAX, Mem(ESP, disp=0)),
        ins("hlt"),
    ])
    assert r.exit_code == 0x1122AA44


def test_sixteen_bit_memory_access():
    r = run([
        ins("sub", ESP, Imm(8)),
        ins("mov", Mem(ESP, disp=0, size=2), Imm(0xBEEF)),
        ins("movzx", EAX, Mem(ESP, disp=0, size=2)),
        ins("hlt"),
    ])
    assert r.exit_code == 0xBEEF


def test_neg_and_not():
    r = run([
        ins("mov", EAX, Imm(5)),
        ins("neg", EAX),
        ins("mov", EBX, EAX),
        ins("not", EBX),           # ~(-5) = 4
        ins("mov", EAX, EBX),
        ins("hlt"),
    ])
    assert r.exit_code == 4


def test_setcc_writes_only_one_byte():
    r = run([
        ins("mov", ECX, Imm(0xFFFFFF00)),
        ins("cmp", ECX, ECX),
        setcc("e", CL),
        ins("mov", EAX, ECX),
        ins("hlt"),
    ])
    assert r.exit_code == 0xFFFFFF01


def test_ah_al_independent():
    r = run([
        ins("mov", EAX, Imm(0)),
        ins("mov", AL, Imm(0x11)),
        ins("mov", AH, Imm(0x22)),
        ins("add", AL, AH),        # 8-bit add: 0x33
        ins("hlt"),
    ])
    assert r.exit_code == 0x2233


def test_unsigned_conditions_on_negative_values():
    r = run([
        ins("mov", EAX, Imm(-1)),       # 0xFFFFFFFF: huge unsigned
        ins("cmp", EAX, Imm(1)),
        jcc("a", Label("above")),
        ins("mov", EAX, Imm(0)),
        ins("hlt"),
        "above",
        ins("mov", EAX, Imm(1)),
        ins("hlt"),
    ])
    assert r.exit_code == 1


def test_memory_operand_with_index_scale():
    r = run([
        ins("sub", ESP, Imm(32)),
        ins("mov", EBX, Imm(3)),
        ins("mov", Mem(ESP, EBX, 4, 0), Imm(77)),   # [esp + ebx*4]
        ins("mov", EAX, Mem(ESP, disp=12)),
        ins("hlt"),
    ])
    assert r.exit_code == 77
