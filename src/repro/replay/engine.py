"""The replay engine: all dynamic re-execution of lifted IR.

The refinement pipeline (paper Figure 4) executes the lifted module on
every traced input at every stage — variadic recovery, register
classification, the instrumented §4.2 bounds runs, and a functional
validation sweep after each refinement.  That replay loop dominates
``wytiwyg_recompile``'s cost, and most of it is redundant:

* **input dedup** — identical entries in ``traces.inputs`` exercise
  identical paths (execution is deterministic), so each distinct input
  replays once and the result fans out to its duplicates;
* **fingerprint-gated validation** — a stage that did not change the
  module (by content hash, :func:`~repro.replay.fingerprint.
  module_fingerprint`) cannot have broken functionality, so its
  validation sweep is skipped entirely;
* **parallel replay** — validation sweeps and the instrumented bounds
  runs are independent per input and fan out over a process pool
  (``jobs=N``); per-input :class:`~repro.core.runtime.TracingRuntime`
  recordings are merged deterministically in traced-input order, so
  parallel and serial runs produce byte-identical recompiled binaries;
* **early-exit validation** — traced runs are replayed cheapest first
  and the sweep stops at the first mismatch, naming the diverging input
  in the raised :class:`~repro.errors.SymbolizeError`.

Observability: counters ``replay.runs`` / ``replay.deduped`` /
``replay.validations_skipped`` / ``validate.interpreter_errors``, and a
``replay.<stage>_seconds`` timer per replay stage.  The pool layer adds
``parallel.pool.spawns`` / ``parallel.pool.reuses``.

Process-pool workers are spawned with the ``fork`` start method through
the shared :class:`repro.parallel.ForkPool` utility and read the module
from inherited memory (a lifted module is a cyclic object graph that
may exceed pickle's recursion limits).  The pool is keyed on the
module's content fingerprint, so consecutive sweeps over an unchanged
module **reuse** the live workers instead of forking a fresh executor
per stage; a content change respawns.  Where ``fork`` is unavailable,
or a pool dies mid-sweep, the engine falls back to the serial path,
which computes the same results.
"""

from __future__ import annotations

import os
from concurrent.futures import as_completed

from .. import obs
from ..core.runtime import TracingRuntime
from ..emu.tracer import TraceSet
from ..errors import SymbolizeError
from ..ir.interp import Interpreter
from ..ir.module import Module
from ..parallel import ForkPool, worker_ctx
from .fingerprint import module_fingerprint


def _baseline() -> bool:
    """``REPRO_REPLAY_BASELINE=1`` disables dedup and fingerprint
    skipping, restoring the pre-replay-engine sweep behaviour (every
    input, every stage).  Benchmarks use it to measure the win."""
    return os.environ.get("REPRO_REPLAY_BASELINE", "") not in ("", "0")


def _worker_begin() -> bool:
    """Reset the inherited recorder (and in-memory ledger events) so
    this worker's observations are not double-counted when the parent
    merges its payload."""
    observe = worker_ctx()[3]
    if observe:
        obs.enable(reset=True)
    obs.fork_begin()
    return observe


def _validate_worker(index: int):
    module, inputs, results, _observe = worker_ctx()
    observe = _worker_begin()
    out = _validate_one(module, inputs[index], results[index], index)
    return out + (obs.export_payload() if observe else None,)


def _validate_one(module: Module, items, expected, index: int):
    """Replay one traced input.

    Returns ``(index, ok, reason, interp_error)`` — ``interp_error``
    marks a swallowed interpreter exception (counted and noted by the
    caller) as opposed to an output mismatch.
    """
    try:
        result = Interpreter(module, items).run()
    except Exception as exc:  # diagnosable, not silent (see validate())
        return index, False, f"{type(exc).__name__}: {exc}", True
    if result.stdout != expected.stdout:
        return index, False, "stdout diverged", False
    if result.exit_code != expected.exit_code:
        return (index, False,
                f"exit code {result.exit_code} != {expected.exit_code}",
                False)
    return index, True, None, False


def _bounds_worker(index: int):
    module, inputs, _results, _observe = worker_ctx()
    observe = _worker_begin()
    runtime = TracingRuntime()
    interp = Interpreter(module, inputs[index],
                         intrinsic_handler=runtime.handle)
    runtime.bind(interp)
    interp.run()
    return (index, runtime.snapshot(),
            obs.export_payload() if observe else None)


class ReplayEngine:
    """Owns every dynamic re-execution of one refinement pipeline run.

    One engine per :func:`~repro.core.driver.wytiwyg_lift` invocation;
    it deduplicates the traced inputs once, tracks the fingerprint of
    the last module state known to reproduce the traces, and fans
    replay sweeps out over ``jobs`` worker processes drawn from one
    reusable :class:`~repro.parallel.ForkPool` (callers that finish a
    pipeline run should :meth:`close` it).
    """

    def __init__(self, traces: TraceSet, jobs: int = 1,
                 pool: ForkPool | None = None):
        self.traces = traces
        self.jobs = max(1, int(jobs))
        if pool is not None:
            # A caller-owned pool (the serve daemon shares one across
            # requests, so identical resubmissions reuse live workers).
            # The pool's worker budget wins over ``jobs`` so the owner
            # controls the fan-out centrally.
            self.jobs = max(self.jobs, pool.jobs)
        self.baseline = _baseline()
        seen: set[str] = set()
        #: Indices into ``traces.inputs``, first occurrence of each
        #: distinct input, in traced order (merge determinism relies on
        #: this order).
        self.unique: list[int] = []
        for i, items in enumerate(traces.inputs):
            key = repr(items)
            if self.baseline or key not in seen:
                seen.add(key)
                self.unique.append(i)
        self.deduped = len(traces.inputs) - len(self.unique)
        if self.deduped:
            obs.count("replay.deduped", self.deduped)
        self._valid_fp: str | None = None
        #: Diagnostics accumulated across sweeps (merged into pipeline
        #: notes by the driver).
        self.notes: list[str] = []
        #: Shared fork pool, reused across sweeps while the module's
        #: content fingerprint is unchanged.  Externally lent pools
        #: outlive this engine (``close`` leaves them running).
        self._own_pool = pool is None
        self.pool = ForkPool(self.jobs) if pool is None else pool
        #: Forces a respawn for sweeps without a content key (baseline
        #: mode keeps the historical pool-per-stage behaviour).
        self._unkeyed = 0

    def close(self) -> None:
        """Release the worker pool (end of the pipeline run).  A pool
        lent by the caller stays alive for the next request."""
        if self._own_pool:
            self.pool.close()

    @property
    def unique_inputs(self) -> list[list]:
        return [self.traces.inputs[i] for i in self.unique]

    def replay_inputs(self, stage: str) -> list[list]:
        """Deduplicated inputs for a serial replay stage (counted)."""
        uniq = self.unique_inputs
        obs.count("replay.runs", len(uniq))
        return uniq

    # -- fingerprint tracking -----------------------------------------------

    def mark_valid(self, module: Module) -> None:
        """Record ``module``'s current content as trace-reproducing.

        Called after lifting (the lifted module reproduces the traces by
        construction — that is the paper's core guarantee) and after
        every successful validation sweep.
        """
        if not self.baseline:
            self._valid_fp = module_fingerprint(module)

    # -- validation ----------------------------------------------------------

    def validate(self, module: Module, stage: str) -> str:
        """Functional check: the module reproduces every traced run.

        Returns ``"skipped"`` when the module content is unchanged since
        it was last known good, else ``"ok"``.  Raises
        :class:`SymbolizeError` naming the diverging input (and the
        interpreter error, if one was swallowed) on failure.
        """
        with obs.timed("replay.validate_seconds"):
            fp = None if self.baseline else module_fingerprint(module)
            if fp is not None and fp == self._valid_fp:
                obs.count("replay.validations_skipped")
                obs.event("validate.verdict", stage=stage,
                          verdict="skipped")
                self.notes.append(
                    f"validate[{stage}]: skipped (module unchanged)")
                return "skipped"
            # Cheapest traced run first: a broken refinement usually
            # breaks every input, so fail on the cheapest one.
            results = self.traces.results
            order = sorted(self.unique,
                           key=lambda i: (results[i].cycles, i))
            if self.jobs > 1 and len(order) > 1:
                failure = self._validate_parallel(module, order, fp)
            else:
                failure = self._validate_serial(module, order)
            if failure is not None:
                index, reason, interp_error = failure
                if interp_error:
                    obs.count("validate.interpreter_errors")
                    self.notes.append(
                        f"validate[{stage}]: interpreter error on "
                        f"input #{index}: {reason}")
                obs.event("validate.verdict", stage=stage,
                          verdict="failed", input=index, reason=reason,
                          interpreter_error=interp_error)
                raise SymbolizeError(
                    f"{stage} broke functionality: traced input "
                    f"#{index} {self.traces.inputs[index]!r} "
                    f"diverged ({reason})")
            self._valid_fp = fp
            obs.event("validate.verdict", stage=stage, verdict="ok",
                      runs=len(order))
            return "ok"

    def _validate_serial(self, module, order):
        inputs, results = self.traces.inputs, self.traces.results
        for i in order:
            obs.count("replay.runs")
            index, ok, reason, interp_error = _validate_one(
                module, inputs[i], results[i], i)
            if not ok:
                return index, reason, interp_error
        return None

    def _validate_parallel(self, module, order, fp: str | None):
        try:
            pool = self._acquire(module, len(order), fp)
        except Exception:
            return self._validate_serial(module, order)
        position = {i: pos for pos, i in enumerate(order)}
        failures: list[tuple] = []
        try:
            futures = [pool.submit(_validate_worker, i) for i in order]
            for future in as_completed(futures):
                (index, ok, reason, interp_error,
                 payload) = future.result()
                obs.merge_payload(payload)
                obs.count("replay.runs")
                if not ok:
                    failures.append((index, reason, interp_error))
                    # Early exit: drop the runs still queued.  The
                    # cancelled executor cannot be reused.
                    self.pool.invalidate(cancel=True)
                    break
        except Exception:
            # A broken pool (OOM-killed worker, missing fork support
            # surfacing late): replaying serially is idempotent.
            self.pool.invalidate()
            return self._validate_serial(module, order)
        if not failures:
            return None
        # Deterministic report: the earliest failure in sweep order.
        return min(failures, key=lambda f: position[f[0]])

    # -- instrumented bounds runs (§4.2) -------------------------------------

    def run_instrumented(self, module: Module) -> TracingRuntime:
        """Execute the probe-instrumented module on every distinct input
        and return the merged tracing runtime.

        Per-input runtimes are merged in traced-input order, which
        reproduces the variable/argument-area discovery order of a
        single shared runtime — serial and parallel sweeps therefore
        feed identical state to layout construction.
        """
        with obs.timed("replay.bounds_seconds"):
            merged = TracingRuntime()
            order = self.unique
            if self.jobs > 1 and len(order) > 1:
                snapshots = self._bounds_parallel(module, order)
                if snapshots is not None:
                    for i in order:
                        merged.merge(snapshots[i])
                        self._trace_merged(i, merged)
                    return merged
            inputs = self.traces.inputs
            for i in order:
                obs.count("replay.runs")
                runtime = TracingRuntime()
                interp = Interpreter(module, inputs[i],
                                     intrinsic_handler=runtime.handle)
                runtime.bind(interp)
                interp.run()
                merged.merge(runtime)
                self._trace_merged(i, merged)
            return merged

    def _trace_merged(self, index: int, merged: TracingRuntime) -> None:
        """Ledger record of one instrumented run folding in (§4.2)."""
        if obs.ledger() is not None:
            obs.event("trace.merged", input=index,
                      stack_vars=len(merged.stack_vars),
                      arg_accesses=len(merged.arg_accesses),
                      links=len(merged.links))

    def _bounds_parallel(self, module, order):
        try:
            pool = self._acquire(module, len(order),
                                 None if self.baseline
                                 else module_fingerprint(module))
        except Exception:
            return None
        snapshots: dict[int, dict] = {}
        try:
            futures = [pool.submit(_bounds_worker, i) for i in order]
            for future in as_completed(futures):
                index, snapshot, payload = future.result()
                obs.merge_payload(payload)
                obs.count("replay.runs")
                snapshots[index] = snapshot
        except SymbolizeError:
            raise
        except Exception as exc:
            # Interpreter errors must propagate exactly as in the serial
            # sweep; only pool-transport failures fall back.
            if type(exc).__name__ in ("BrokenProcessPool",
                                      "PicklingError"):
                self.pool.invalidate()
                return None
            raise
        return snapshots

    # -- pool ----------------------------------------------------------------

    def _acquire(self, module: Module, ntasks: int, fp: str | None):
        """An executor whose workers inherit the module's current state.

        Keyed on the module's content fingerprint (plus the obs
        activation state, which workers latch at fork): consecutive
        sweeps over unchanged content share one set of forked workers;
        a content change — or a sweep without a fingerprint (baseline
        mode) — respawns.
        """
        if fp is None:
            self._unkeyed += 1
            key = ("replay-unkeyed", self._unkeyed)
        else:
            key = ("replay", fp, obs.enabled())
        ctx = (module, self.traces.inputs, self.traces.results,
               obs.enabled())
        return self.pool.acquire(key, ctx, ntasks)
