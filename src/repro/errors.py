"""Exception hierarchy shared across the repro package.

Every subsystem raises a subclass of :class:`ReproError` so that callers can
catch failures from the toolchain as a family, while still being able to
distinguish (say) an assembler bug from a lifting failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro toolchain."""


class AsmError(ReproError):
    """Raised when the assembler rejects an instruction or operand."""


class EncodingError(ReproError):
    """Raised when machine code cannot be encoded or decoded."""


class LinkError(ReproError):
    """Raised when a binary image cannot be linked or loaded."""


class EmulationError(ReproError):
    """Raised when the machine emulator hits an illegal state."""


class CompileError(ReproError):
    """Raised by the MiniC compiler on invalid source programs."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class IRError(ReproError):
    """Raised when IR is malformed (verifier failures, bad builder use)."""


class InterpError(ReproError):
    """Raised when the IR interpreter hits an illegal state."""


class LiftError(ReproError):
    """Raised when a binary cannot be lifted to IR."""


class SymbolizeError(ReproError):
    """Raised when stack symbolization cannot be completed."""


class CheckError(ReproError):
    """Raised when a ``repro check`` / recompile run is asked to verify
    an image with no usable dynamic evidence (for example zero traced
    inputs): there is nothing to corroborate against, which is a user
    error, not a pipeline crash."""


class StaticCheckError(ReproError):
    """Raised when the static corroboration gate (``REPRO_CHECK``)
    refuses to hand a module to the optimizer.

    Carries the :class:`repro.sanalysis.CheckReport` whose findings
    tripped the gate as :attr:`report`.
    """

    def __init__(self, message: str, report=None):
        self.report = report
        super().__init__(message)


class LowerError(ReproError):
    """Raised when IR cannot be lowered back to machine code."""


class WorkloadError(ReproError):
    """Raised when a workload program or its inputs are inconsistent."""


class ServeError(ReproError):
    """Raised by the recompilation service (:mod:`repro.serve`): a
    malformed request, a rejected job, or a transport failure between
    the client and the daemon."""


class SchedError(ReproError):
    """Raised by the serve daemon's job scheduler (:mod:`repro.sched`):
    submitting to a stopped scheduler, shutdown races, or a worker-pool
    failure that cannot be attributed to one job."""


class SchedRejected(SchedError):
    """Raised when the scheduler's bounded job queue is full
    (backpressure).  :attr:`retry_after` is the server's estimate, in
    seconds, of when capacity frees up — clients should back off and
    resubmit."""

    def __init__(self, message: str, retry_after: float | None = None):
        self.retry_after = retry_after
        super().__init__(message)


class RemoteJobError(ServeError):
    """A job failed inside a scheduler worker process.  The original
    exception's class name travels as :attr:`remote_kind` so the serve
    protocol can report it exactly as the in-process path would."""

    def __init__(self, message: str, remote_kind: str = "RemoteJobError"):
        self.remote_kind = remote_kind
        super().__init__(message)
