"""Dead argument / dead result elimination (LLVM's DAE analogue).

After symbolization, lifted functions often still declare results for
scratch registers no caller reads, and accept arguments no path uses.
This module-level pass shrinks those signatures, which is what finally
turns lifted call sites back into cheap native calls.

Functions whose address escapes (entry function, indirect-call targets,
address-taken) are left untouched.
"""

from __future__ import annotations

from ..ir.module import Function, Module
from ..ir.values import Call, CallInd, FuncRef, Instr, Param, \
    Result, Ret
from .analysis import CFG_ANALYSES
from .dce import eliminate_dead_code

#: Signature shrinking rewrites rets, calls, and params in place and
#: sweeps dead pure instructions; the CFG shape of every function is
#: untouched.
PRESERVES = CFG_ANALYSES


def _protected_functions(module: Module) -> set[str]:
    protected = {module.entry_name}
    has_indirect_calls = any(
        isinstance(instr, CallInd)
        for func in module.functions.values()
        for instr in func.instructions())
    if has_indirect_calls:
        # The address table may route any indirect call to these.
        protected.update(module.address_table.values())
    for func in module.functions.values():
        for instr in func.instructions():
            for pos, op in enumerate(instr.ops):
                if isinstance(op, FuncRef):
                    if not (isinstance(instr, Call) and pos == 0):
                        protected.add(op.name)
    for g in module.globals.values():
        if isinstance(g.init, list):
            for word in g.init:
                if isinstance(word, FuncRef):
                    protected.add(word.name)
    return protected


def _callers_of(module: Module) -> dict[str, list[Call]]:
    calls: dict[str, list[Call]] = {name: []
                                    for name in module.functions}
    for func in module.functions.values():
        for instr in func.instructions():
            if isinstance(instr, Call):
                calls.setdefault(instr.callee.name, []).append(instr)
    return calls


def eliminate_dead_params(module: Module) -> bool:
    protected = _protected_functions(module)
    callers = _callers_of(module)
    changed = False
    for name, func in module.functions.items():
        if name in protected or not func.params:
            continue
        used: set[Param] = set()
        for instr in func.instructions():
            for op in instr.operands():
                if isinstance(op, Param):
                    used.add(op)
        dead = [i for i, p in enumerate(func.params) if p not in used]
        if not dead:
            continue
        dead_set = set(dead)
        func.params = [p for i, p in enumerate(func.params)
                       if i not in dead_set]
        for i, p in enumerate(func.params):
            p.index = i
        for call in callers.get(name, []):
            args = call.ops[1:]
            call.ops = [call.ops[0]] + [
                a for i, a in enumerate(args) if i not in dead_set]
        changed = True
    return changed


def _live_results(module: Module,
                  protected: set[str]) -> dict[str, set[int]]:
    """Interprocedural result liveness.

    A result index is live if some caller really uses it — where a use
    that merely forwards the value as the caller's own return operand
    counts only if *that* result index is itself live (recursive
    register-clobber chains in lifted code die together).
    """
    live: dict[str, set[int]] = {
        name: set(range(func.nresults))
        for name, func in module.functions.items() if name in protected}
    # (callee, index) -> set of (caller, caller_ret_index) forwards
    forwards: dict[tuple[str, int], set[tuple[str, int]]] = {}

    def trace_sinks(value: Instr, caller: Function,
                    users: dict) -> list[tuple[str, int]] | None:
        """Where does ``value`` flow?  Returns the set of caller return
        positions it reaches (following phi chains), or None if it has
        any real (non-forwarding) use."""
        sinks: list[tuple[str, int]] = []
        seen: set[Instr] = set()
        stack: list[Instr] = [value]
        while stack:
            v = stack.pop()
            for user in users.get(v, []):
                from ..ir.values import Phi
                if isinstance(user, Ret):
                    sinks.extend((caller.name, j)
                                 for j, op in enumerate(user.ops)
                                 if op is v)
                elif isinstance(user, Phi):
                    if user not in seen:
                        seen.add(user)
                        stack.append(user)
                else:
                    return None
        return sinks

    def note_value(callee: str, index: int, value: Instr,
                   caller: Function, users: dict) -> None:
        sinks = trace_sinks(value, caller, users)
        if sinks is None:
            live.setdefault(callee, set()).add(index)
        else:
            forwards.setdefault((callee, index), set()).update(sinks)

    for func in module.functions.values():
        users: dict[Instr, list[Instr]] = {}
        for instr in func.instructions():
            for op in instr.operands():
                if isinstance(op, Instr):
                    users.setdefault(op, []).append(instr)
        for instr in func.instructions():
            if isinstance(instr, Call):
                callee = instr.callee.name
                if callee not in module.functions:
                    continue
                if instr.nresults == 1:
                    note_value(callee, 0, instr, func, users)
                else:
                    for result in users.get(instr, []):
                        if isinstance(result, Result):
                            note_value(callee, result.index, result,
                                       func, users)
            elif isinstance(instr, CallInd):
                # Unknown callees: every possible target's results live.
                for name in module.address_table.values():
                    f = module.functions.get(name)
                    if f is not None:
                        live.setdefault(name, set()).update(
                            range(f.nresults))

    changed = True
    while changed:
        changed = False
        for (callee, index), origins in forwards.items():
            if index in live.get(callee, set()):
                continue
            if any(j in live.get(caller, set())
                   for caller, j in origins):
                live.setdefault(callee, set()).add(index)
                changed = True
    return live


def eliminate_dead_results(module: Module) -> bool:
    protected = _protected_functions(module)
    callers = _callers_of(module)
    liveness = _live_results(module, protected)

    plans: dict[str, list[int]] = {}
    for name, func in module.functions.items():
        if name in protected or func.nresults == 0:
            continue
        keep = sorted(i for i in liveness.get(name, set())
                      if i < func.nresults)
        if len(keep) < func.nresults:
            plans[name] = keep
    if not plans:
        return False

    # Phase A: shrink every planned function's returns first, so dead
    # Result values lose their last (forwarding) uses.
    for name, keep in plans.items():
        func = module.functions[name]
        for block in func.blocks:
            for instr in block.instrs:
                if isinstance(instr, Ret):
                    instr.ops = [instr.ops[i] for i in keep]
        func.nresults = len(keep)

    # Dead results may feed phi chains that forwarded them to the (now
    # shrunk) returns; sweep those before renumbering.
    for func in module.functions.values():
        eliminate_dead_code(func)

    # Phase B: fix up call sites: renumber surviving Results, delete dead
    # ones, fold single-result extractions into the call value.
    for name, keep in plans.items():
        remap = {old: new for new, old in enumerate(keep)}
        for call in callers.get(name, []):
            caller = call.block.function if call.block else None
            call.nresults = len(keep)
            if caller is None:
                continue
            stale: list[Result] = []
            for instr in list(caller.instructions()):
                if isinstance(instr, Result) and instr.call is call:
                    if instr.index in remap:
                        instr.index = remap[instr.index]
                        if len(keep) == 1:
                            stale.append(instr)  # fold into call value
                    else:
                        stale.append(instr)
            if stale:
                for block in caller.blocks:
                    block.instrs = [i for i in block.instrs
                                    if i not in stale]
                    if len(keep) == 1:
                        for instr in block.instrs:
                            for s in stale:
                                instr.replace_operand(s, call)
                caller.invalidate()
    return True


def shrink_signatures(module: Module) -> bool:
    """Iterate param/result elimination with DCE to a fixed point."""
    changed = False
    for _ in range(8):
        round_changed = False
        for func in module.functions.values():
            eliminate_dead_code(func)
        round_changed |= eliminate_dead_results(module)
        round_changed |= eliminate_dead_params(module)
        if not round_changed:
            break
        changed = True
    return changed
