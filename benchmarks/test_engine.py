"""Engine speedup benches: cached-block machine vs the per-step
reference, and the compiled IR interpreter vs the isinstance-dispatch
reference.  Speedup ratios land in ``extra_info`` so a benchmark JSON
run records them alongside the timings."""

import time

import pytest

from repro import obs
from repro.cc import compile_source
from repro.core.driver import wytiwyg_lift
from repro.emu import trace_binary
from repro.ir import Interpreter

SOURCE = r"""
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() {
    int acc = 0;
    int i;
    for (i = 0; i < 40; i++) acc += fib(10) & 7;
    printf("acc=%d\n", acc);
    return 0;
}
"""


@pytest.fixture(scope="module")
def image():
    return compile_source(SOURCE, "gcc12", "3", "engine_bench")


@pytest.fixture(scope="module")
def traces(image):
    return trace_binary(image.stripped(), [[]])


def _median_seconds(fn, rounds=5):
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def test_bench_machine_blocks(benchmark, image):
    stripped = image.stripped()
    reference = _median_seconds(
        lambda: trace_binary(stripped, [[]], use_blocks=False))
    result = benchmark(lambda: trace_binary(stripped, [[]]))
    benchmark.extra_info["reference_seconds"] = reference
    benchmark.extra_info["speedup_vs_steps"] = \
        reference / benchmark.stats.stats.median


def test_bench_machine_steps_reference(benchmark, image):
    stripped = image.stripped()
    benchmark(lambda: trace_binary(stripped, [[]], use_blocks=False))


def test_bench_interp_compiled(benchmark, traces):
    module, _, _, _ = wytiwyg_lift(traces)
    run_items = traces.inputs[0]
    reference = _median_seconds(
        lambda: Interpreter(module, run_items, compiled=False).run())
    result = benchmark(
        lambda: Interpreter(module, run_items, compiled=True).run())
    benchmark.extra_info["reference_seconds"] = reference
    benchmark.extra_info["speedup_vs_reference"] = \
        reference / benchmark.stats.stats.median


def test_bench_interp_reference(benchmark, traces):
    module, _, _, _ = wytiwyg_lift(traces)
    run_items = traces.inputs[0]
    benchmark(
        lambda: Interpreter(module, run_items, compiled=False).run())


def test_block_cache_hit_rate(image):
    """The superblock cache must serve >= 90% of dispatches on the bench
    workload — its loops re-enter the same compiled blocks, so anything
    lower means the cache is being dropped or bypassed."""
    stripped = image.stripped()  # fresh image -> cold block cache
    obs.enable(reset=True)
    try:
        trace_binary(stripped, [[]])
        counters = obs.recorder().registry.counters
        hits = counters.get("emu.block_cache.hit", 0)
        misses = counters.get("emu.block_cache.miss", 0)
    finally:
        obs.disable()
    assert hits + misses > 0
    assert hits / (hits + misses) >= 0.90
