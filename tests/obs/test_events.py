"""The structured event ledger: typing, schema, process/thread safety."""

import json
import threading

import pytest

from repro import obs
from repro.evaluation.harness import sweep
from repro.obs import events as ev
from repro.workloads import WORKLOADS
from repro.workloads.base import Workload

TINY = Workload(
    name="tinyledger",
    source=r'''
int twice(int x) { return x + x; }
int main() {
    int total = 0;
    int i;
    for (i = 0; i < 20; i++) total += twice(i) & 0x3F;
    printf("%d\n", total);
    return 0;
}
''',
    ref_inputs=((),),
    description="event-ledger sweep kernel",
)


@pytest.fixture(autouse=True)
def _ledger_off():
    yield
    obs.disable_ledger()
    obs.disable()


def test_emit_rejects_unknown_kind():
    led = obs.enable_ledger()
    with pytest.raises(ValueError, match="unknown event kind"):
        led.emit("no.such.kind")


def test_in_memory_events_carry_schema_and_sequence():
    led = obs.enable_ledger()
    obs.event("cache.hit", cache="lower", function="f")
    obs.event("cache.miss", cache="lower", function="g")
    assert [e["kind"] for e in led.events] == ["cache.hit", "cache.miss"]
    assert [e["seq"] for e in led.events] == [1, 2]
    assert all(e["v"] == obs.LEDGER_SCHEMA_VERSION for e in led.events)
    assert all(e["pid"] > 0 for e in led.events)


def test_event_is_noop_when_disabled():
    obs.disable_ledger()
    assert obs.ledger() is None
    obs.event("cache.hit")  # must not raise, must not record anywhere


def test_fields_are_converted_to_json_values():
    led = obs.enable_ledger()
    doc = led.emit("trace.merged", refs={3, 1, 2}, pair=(4, 5),
                   nested={"k": (1,)}, obj=object())
    assert doc["refs"] == [1, 2, 3]
    assert doc["pair"] == [4, 5]
    assert doc["nested"] == {"k": [1]}
    assert isinstance(doc["obj"], str)
    json.dumps(doc)  # everything serializable


def test_file_backed_roundtrip_and_forward_compat(tmp_path):
    path = tmp_path / "events.jsonl"
    led = obs.enable_ledger(path)
    obs.event("run.start", pipeline="wytiwyg")
    obs.event("run.finish", fallback=False)
    led.close()
    # A line from a future schema must be skipped, not fatal.
    with path.open("a") as fh:
        fh.write(json.dumps({"v": obs.LEDGER_SCHEMA_VERSION + 1,
                             "kind": "from.the.future"}) + "\n")
    docs = obs.read_events(path)
    assert [d["kind"] for d in docs] == ["run.start", "run.finish"]


def test_fork_begin_drops_inherited_in_memory_events():
    led = obs.enable_ledger()
    obs.event("pool.spawn", key="k")
    obs.fork_begin()
    assert led.events == []
    obs.event("pool.reuse", key="k")
    assert [e["kind"] for e in led.events] == ["pool.reuse"]


def test_worker_payload_ships_in_memory_events():
    led = obs.enable_ledger()
    obs.event("opt.memo_hit", function="f")
    payload = obs.export_payload()
    assert payload is not None
    assert [e["kind"] for e in payload["events"]] == ["opt.memo_hit"]
    assert led.events == []  # drained into the payload
    obs.merge_payload(payload)
    assert [e["kind"] for e in led.events] == ["opt.memo_hit"]


def test_concurrent_emission_produces_clean_jsonl(tmp_path):
    """Threaded spans + counters + events against one file-backed
    ledger: every line parses, none interleave, per-writer sequence
    numbers stay strictly increasing."""
    path = tmp_path / "events.jsonl"
    obs.enable(reset=True)
    obs.enable_ledger(path)
    n_threads, n_each = 8, 50

    def worker(tid):
        for i in range(n_each):
            with obs.span(f"stage.t{tid}", i=i):
                obs.count("thread.ticks")
            obs.event("cache.hit", cache="lower",
                      function=f"t{tid}_{i}",
                      payload="x" * 64)

    threads = [threading.Thread(target=worker, args=(t,))
               for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    obs.disable_ledger()

    docs = obs.read_events(path)
    # span hooks add stage.start/stage.finish around each cache.hit
    hits = [d for d in docs if d["kind"] == "cache.hit"]
    assert len(hits) == n_threads * n_each
    assert {d["kind"] for d in docs} == {"stage.start", "stage.finish",
                                         "cache.hit"}
    seqs = [d["seq"] for d in docs]
    assert sorted(seqs) == list(range(1, len(docs) + 1))
    assert obs.recorder().registry.counters["thread.ticks"] == \
        n_threads * n_each


def test_parallel_sweep_appends_worker_events(tmp_path, monkeypatch):
    """sweep(jobs=2) workers inherit the file-backed ledger descriptor
    over fork and append their events without corrupting the JSONL."""
    monkeypatch.setenv("REPRO_EVAL_CACHE", str(tmp_path / "cache"))
    monkeypatch.setitem(WORKLOADS, TINY.name, TINY)
    path = tmp_path / "events.jsonl"
    obs.enable(reset=True)
    obs.enable_ledger(path)
    try:
        out = sweep((TINY.name,),
                    configs=(("gcc12", "3"), ("gcc12", "0")),
                    include_secondwrite=False, jobs=2)
    finally:
        obs.disable_ledger()
        obs.disable()
    assert len(out) == 2

    docs = obs.read_events(path)  # raises on any torn/corrupt line
    assert all(d["v"] == obs.LEDGER_SCHEMA_VERSION for d in docs)
    kinds = {d["kind"] for d in docs}
    assert {"run.start", "run.finish", "stage.start", "stage.finish",
            "frame.var.seed", "validate.verdict"} <= kinds
    # Forked workers (not the parent) ran the pipelines, and each
    # writer's sequence is strictly increasing in file order.
    import os as _os
    by_pid: dict[int, list[int]] = {}
    for d in docs:
        by_pid.setdefault(d["pid"], []).append(d["seq"])
    worker_pids = {d["pid"] for d in docs if d["kind"] == "run.start"}
    assert worker_pids and _os.getpid() not in worker_pids
    for seqs in by_pid.values():
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


def test_in_memory_sweep_events_ride_worker_payloads(tmp_path,
                                                     monkeypatch):
    """With an in-memory ledger the workers cannot share the parent's
    list; their events come home on the obs payloads instead."""
    monkeypatch.setenv("REPRO_EVAL_CACHE", str(tmp_path / "cache"))
    monkeypatch.setitem(WORKLOADS, TINY.name, TINY)
    obs.enable(reset=True)
    led = obs.enable_ledger()
    try:
        out = sweep((TINY.name,), configs=(("gcc12", "3"),),
                    include_secondwrite=False, jobs=2)
        docs = list(led.events)
    finally:
        obs.disable_ledger()
        obs.disable()
    assert len(out) == 1
    kinds = {d["kind"] for d in docs}
    assert {"run.start", "run.finish", "frame.var.seed"} <= kinds
    # No parent-side duplicates: exactly one pipeline ran.
    assert sum(1 for d in docs if d["kind"] == "run.start") == 1


def test_env_var_activates_ledger(tmp_path):
    # The import-time hook mirrors REPRO_OBS; exercise the same code
    # path directly (the module is already imported in-process).
    path = tmp_path / "env.jsonl"
    led = ev.enable_ledger(str(path))
    assert obs.ledger() is led and led.path is not None
