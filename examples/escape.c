/* The motivating case for the *interprocedural* corroboration gate: a
 * caller passes &buf to a callee, so every access to the array happens
 * in a different frame than the one that owns it.  Per-function
 * corroboration is blind here — main's own code never touches buf, and
 * fill's accesses are parameter-relative — so an under-tracing input
 * (n=3 of 8 elements) recovers a truncated variable without a single
 * intra-function finding.  The call-graph summary pass translates
 * fill's footprint back into main's frame and flags the split:
 *
 *   python -m repro compile examples/escape.c -o escape.img.json
 *   python -m repro check escape.img.json --input int:3
 *     -> escaped-split error naming the fn_* -> fn_* call chain
 *   REPRO_INTERPROC=0 python -m repro check escape.img.json --input int:3
 *     -> clean (the per-function pass cannot see it)
 *   python -m repro check escape.img.json --input int:8 --strict
 *     -> clean: the trace covered everything the callee can reach
 *
 * (fill is recursive so the -O3 personality cannot inline it away —
 * which also makes it a one-node SCC in the summary call graph.)
 */
int fill(int *p, int i, int n) {
    if (i >= n) return 0;
    p[i] = i * 3;
    return p[i] + fill(p, i + 1, n);
}

int main() {
    int buf[8];
    int n = read_int();
    int s = fill(buf, 0, n);
    printf("s=%d\n", s);
    return 0;
}
