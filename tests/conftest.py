"""Shared fixtures: small MiniC programs and compiled images.

Compilation results are cached per session so the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.cc import compile_source, compile_to_ir, personality

#: A program touching most MiniC features (structs, arrays, pointers,
#: recursion, switch, function pointers, strings, varargs).
FEATURE_SOURCE = r"""
struct point { int x; int y; };
int squares[10];
char msg[] = "hi";
int add(int a, int b) { return a + b; }
int mul2(int a, int b) { return a * b; }
int apply(int (*fn)(int, int), int a, int b) { return fn(a, b); }
int sum_array(int *arr, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += arr[i];
    return s;
}
int classify(int v) {
    switch (v) {
    case 0: return 100;
    case 1:
    case 2: return 200;
    case 3: return 300;
    case 5: return 500;
    default: return -1;
    }
}
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() {
    struct point p; struct point q;
    int i;
    p.x = 3; p.y = 4;
    q = p;
    for (i = 0; i < 10; i++) squares[i] = i * i;
    printf("%s %d %d\n", msg, q.x + q.y, sum_array(squares, 10));
    printf("%d %d %d\n", classify(2), classify(5), classify(9));
    printf("%d %d fib=%d\n", apply(add, 6, 7), apply(mul2, 6, 7),
           fib(9));
    char buf[24];
    sprintf(buf, "x=%d", 42);
    puts(buf);
    return 0;
}
"""

FEATURE_STDOUT = (b"hi 7 285\n200 500 -1\n13 42 fib=34\nx=42\n")

#: A tiny compute kernel used where a fast lift/recompile cycle matters.
KERNEL_SOURCE = r"""
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() {
    int arr[8];
    int i;
    for (i = 0; i < 8; i++) arr[i] = i * 3;
    int s = 0;
    for (i = 0; i < 8; i++) s += arr[i];
    printf("fib=%d sum=%d\n", fib(8), s);
    return 0;
}
"""

KERNEL_STDOUT = b"fib=21 sum=84\n"

_image_cache: dict = {}


def cached_image(source: str, compiler: str = "gcc12",
                 opt_level: str = "3", name: str = "t"):
    key = (source, compiler, opt_level)
    if key not in _image_cache:
        _image_cache[key] = compile_source(source, compiler, opt_level,
                                           name)
    return _image_cache[key]


@pytest.fixture(scope="session")
def feature_image():
    return cached_image(FEATURE_SOURCE)


@pytest.fixture(scope="session")
def kernel_image():
    return cached_image(KERNEL_SOURCE)


@pytest.fixture(scope="session")
def kernel_module():
    return compile_to_ir(KERNEL_SOURCE, "kernel", personality("gcc12",
                                                              "3"))


@pytest.fixture
def feature_source():
    return FEATURE_SOURCE


@pytest.fixture
def kernel_source():
    return KERNEL_SOURCE
