"""mcf stand-in: minimum-cost route planning — Bellman-Ford relaxation
over a synthetic flow network with struct-of-arrays globals and a
struct-based edge list, then a flow-augmentation loop."""

from __future__ import annotations

from .base import Workload

SOURCE = r"""
struct edge { int from; int to; int cost; int cap; };

struct edge edges[600];
int n_edges;
int n_nodes;
int dist[80];
int pred_edge[80];

void build_network(int nodes, int seed) {
    n_nodes = nodes;
    n_edges = 0;
    int s = seed;
    int i;
    for (i = 1; i < nodes; i++) {
        /* chain edge keeps the graph connected */
        edges[n_edges].from = i - 1;
        edges[n_edges].to = i;
        edges[n_edges].cost = 1 + (s & 15);
        edges[n_edges].cap = 2 + (s & 3);
        n_edges = n_edges + 1;
        s = (s * 1103515245 + 12345) & 2147483647;
    }
    int extra = nodes * 4;
    for (i = 0; i < extra; i++) {
        int a = (s >> 8) % nodes;
        s = (s * 1103515245 + 12345) & 2147483647;
        int b = (s >> 8) % nodes;
        s = (s * 1103515245 + 12345) & 2147483647;
        if (a == b) continue;
        edges[n_edges].from = a;
        edges[n_edges].to = b;
        edges[n_edges].cost = 1 + (s & 31);
        edges[n_edges].cap = 1 + (s & 7);
        n_edges = n_edges + 1;
    }
}

int bellman_ford(int src) {
    int i;
    for (i = 0; i < n_nodes; i++) {
        dist[i] = 1000000;
        pred_edge[i] = -1;
    }
    dist[src] = 0;
    int rounds = 0;
    int changed = 1;
    while (changed && rounds < n_nodes) {
        changed = 0;
        for (i = 0; i < n_edges; i++) {
            struct edge *e = &edges[i];
            if (e->cap <= 0) continue;
            int nd = dist[e->from] + e->cost;
            if (nd < dist[e->to]) {
                dist[e->to] = nd;
                pred_edge[e->to] = i;
                changed = 1;
            }
        }
        rounds = rounds + 1;
    }
    return rounds;
}

int augment(int sink) {
    /* Walk predecessor edges, find bottleneck, push flow. */
    int bottleneck = 1000000;
    int node = sink;
    int hops = 0;
    while (node != 0 && hops < n_nodes) {
        int ei = pred_edge[node];
        if (ei < 0) return 0;
        if (edges[ei].cap < bottleneck) bottleneck = edges[ei].cap;
        node = edges[ei].from;
        hops = hops + 1;
    }
    if (node != 0) return 0;
    node = sink;
    hops = 0;
    while (node != 0 && hops < n_nodes) {
        int ei = pred_edge[node];
        edges[ei].cap = edges[ei].cap - bottleneck;
        node = edges[ei].from;
        hops = hops + 1;
    }
    return bottleneck;
}

int main() {
    int nodes = read_int();
    int seed = read_int();
    int iterations = read_int();
    build_network(nodes, seed);
    printf("network: %d nodes, %d edges\n", n_nodes, n_edges);
    int total_flow = 0;
    int total_cost = 0;
    int it;
    for (it = 0; it < iterations; it++) {
        int rounds = bellman_ford(0);
        int sink = n_nodes - 1 - (it % 3);
        int d = dist[sink];
        if (d >= 1000000) break;
        int pushed = augment(sink);
        if (pushed <= 0) break;
        total_flow = total_flow + pushed;
        total_cost = total_cost + pushed * d;
        printf("iter %d: dist %d (rounds %d), pushed %d\n",
               it, d, rounds, pushed);
    }
    printf("flow %d cost %d\n", total_flow, total_cost);
    return 0;
}
"""

WORKLOAD = Workload(
    name="mcf",
    source=SOURCE,
    ref_inputs=(
        (30, 12345, 6),
    ),
    description="min-cost flow: Bellman-Ford + path augmentation",
)
