"""IR textual rendering."""

from repro.ir import (
    Builder,
    Const,
    Function,
    GlobalRef,
    GlobalVar,
    Module,
    function_to_text,
    module_to_text,
)


def test_function_rendering():
    f = Function("f", ["x"])
    f.orig_entry = 0x8048000
    b = Builder(f)
    b.position(f.add_block("entry"))
    v = b.add(f.params[0], Const(1))
    b.ret([v])
    text = function_to_text(f)
    assert "func @f(%x) -> 1" in text
    assert "orig 0x8048000" in text
    assert "%0 = add %x, 1" in text
    assert "ret %0" in text


def test_module_rendering():
    m = Module("demo")
    m.add_global(GlobalVar("g", 16, fixed_addr=0x2000))
    f = Function("main", [])
    b = Builder(f)
    b.position(f.add_block("entry"))
    b.store(GlobalRef("g"), Const(1))
    b.ret([Const(0)])
    m.add_function(f)
    text = module_to_text(m)
    assert "global @g [16 bytes] @ 0x2000" in text
    assert "store.4 @g, 1" in text


def test_renumber_skips_void_instructions():
    f = Function("f", [])
    b = Builder(f)
    b.position(f.add_block("entry"))
    v = b.add(Const(1), Const(2))
    b.store(v, Const(3))
    w = b.add(v, Const(4))
    b.ret([w])
    f.renumber()
    assert v.name == "0" and w.name == "1"
