"""Stack layout construction (paper §4.2, "Object Bounds Recovery").

Takes the per-base-pointer intervals and linked pairs collected by the
tracing runtime and partitions each function's frame into variables:

* each defined base pointer contributes the absolute interval
  ``[offset + low, offset + high)``;
* overlapping intervals merge; linked pairs merge when both have defined
  bounds (paper §4.2.4);
* base pointers with undefined bounds attach to a variable via links, or
  positionally when they fall inside (or exactly at the end of — the
  Figure 3 end-pointer shape) an existing variable, or become
  speculative 4-byte singletons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from .instrument import ModuleInstrumentation
from .runtime import TracingRuntime


@dataclass
class FrameVariable:
    """One recovered stack variable (sp0-relative byte range)."""

    start: int
    end: int
    align: int = 4
    ref_ids: set[int] = field(default_factory=set)

    @property
    def size(self) -> int:
        return max(self.end - self.start, 1)

    @property
    def name(self) -> str:
        # Encode the offset's sign: frames can recover variables at
        # symmetric offsets (a local at sp0-8 and a stack arg at sp0+8),
        # and ``sv_8`` for both would collide in the symbolized IR.
        sign = "m" if self.start < 0 else "p"
        return f"sv_{sign}{abs(self.start)}"


@dataclass
class FrameLayout:
    """The recovered layout of one function's frame."""

    func_name: str
    variables: list[FrameVariable] = field(default_factory=list)
    #: ref_id -> its variable
    ref_to_var: dict[int, FrameVariable] = field(default_factory=dict)


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[int, int] = {}

    def find(self, x: int) -> int:
        self.parent.setdefault(x, x)
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def build_frame_layout(func_name: str,
                       refs: dict[int, tuple[object, int]],
                       runtime: TracingRuntime) -> FrameLayout:
    """Partition one function's frame from its base-pointer intervals."""
    layout = FrameLayout(func_name)

    frame_refs = {rid: off for rid, (_v, off) in refs.items() if off < 0}
    if not frame_refs:
        return layout

    intervals: dict[int, tuple[int, int] | None] = {}
    aligns: dict[int, int] = {}
    for rid, off in frame_refs.items():
        var = runtime.stack_vars.get(rid)
        if var is not None and var.defined:
            intervals[rid] = (off + var.low, off + var.high)
            aligns[rid] = var.align
        else:
            intervals[rid] = None
            aligns[rid] = var.align if var is not None else 4

    # Seed one group per defined interval, then merge to a fixed point:
    # positional overlap and (defined-defined) links both merge, and a
    # link-merge can create fresh positional overlaps with groups in
    # between, so the two rules iterate together.
    groups: list[FrameVariable] = [
        FrameVariable(iv[0], iv[1], aligns.get(rid, 4), {rid})
        for rid, iv in intervals.items() if iv is not None
    ]
    if obs.ledger() is not None:
        for rid, iv in sorted(intervals.items()):
            if iv is None:
                continue
            var = runtime.stack_vars.get(rid)
            obs.event("frame.var.seed", func=func_name, ref_id=rid,
                      interval=[iv[0], iv[1]],
                      sp0_offset=frame_refs[rid],
                      traced=[var.low, var.high])
    links = [tuple(pair) for pair in runtime.links
             if all(r in intervals and intervals[r] is not None
                    for r in pair)]
    groups = _merge_to_fixpoint(groups, links, func_name=func_name)

    layout.variables = groups
    for var in layout.variables:
        for rid in var.ref_ids:
            layout.ref_to_var[rid] = var

    # Attach undefined refs: by link first, then positionally (allowing
    # exactly-at-end pointers, the Figure 3 shape), else as speculative
    # 4-byte singletons.
    pending = [rid for rid, iv in intervals.items() if iv is None]
    for pair in runtime.links:
        a, b = tuple(pair)
        for rid, other in ((a, b), (b, a)):
            if rid in pending and other in layout.ref_to_var:
                var = layout.ref_to_var[other]
                var.ref_ids.add(rid)
                layout.ref_to_var[rid] = var
                pending.remove(rid)
                obs.event("frame.var.attach", func=func_name,
                          ref_id=rid, method="link",
                          interval=[var.start, var.end])
    singletons: list[FrameVariable] = []
    for rid in list(pending):
        off = frame_refs[rid]
        home = None
        for var in layout.variables:
            if var.start <= off <= var.end:
                home = var
                break
        if home is None:
            home = FrameVariable(off, off + 4, aligns.get(rid, 4), set())
            singletons.append(home)
            layout.variables.append(home)
            obs.event("frame.var.attach", func=func_name, ref_id=rid,
                      method="singleton", interval=[off, off + 4])
        else:
            obs.event("frame.var.attach", func=func_name, ref_id=rid,
                      method="positional",
                      interval=[home.start, home.end])
        home.ref_ids.add(rid)
        layout.ref_to_var[rid] = home
        pending.remove(rid)

    # Speculative singletons may overlap established variables; one more
    # merge round restores disjointness.
    if singletons:
        layout.variables = _merge_to_fixpoint(layout.variables, [],
                                              func_name=func_name)
        layout.ref_to_var = {rid: var for var in layout.variables
                             for rid in var.ref_ids}
    layout.variables.sort(key=lambda v: v.start)
    return layout


def _merge_to_fixpoint(groups: list[FrameVariable],
                       links: list[tuple[int, int]],
                       func_name: str | None = None) -> list:
    while True:
        changed = False
        groups.sort(key=lambda v: v.start)
        merged: list[FrameVariable] = []
        for var in groups:
            if merged and var.start < merged[-1].end:
                _absorb(merged[-1], var, func_name, "overlap")
                changed = True
            else:
                merged.append(var)
        groups = merged
        by_ref = {rid: var for var in groups for rid in var.ref_ids}
        for a, b in links:
            va, vb = by_ref.get(a), by_ref.get(b)
            if va is not None and vb is not None and va is not vb:
                _absorb(va, vb, func_name, "link")
                groups.remove(vb)
                by_ref.update({rid: va for rid in va.ref_ids})
                changed = True
        if not changed:
            return groups


def _absorb(into: FrameVariable, other: FrameVariable,
            func_name: str | None = None,
            reason: str = "overlap") -> None:
    if func_name is not None and obs.ledger() is not None:
        obs.event("frame.var.merge", func=func_name, reason=reason,
                  into=[into.start, into.end],
                  absorbed=[other.start, other.end])
    into.start = min(into.start, other.start)
    into.end = max(into.end, other.end)
    into.align = max(into.align, other.align)
    into.ref_ids |= other.ref_ids


def build_layouts(runtime: TracingRuntime,
                  mi: ModuleInstrumentation) -> dict[str, FrameLayout]:
    return {
        name: build_frame_layout(name, fi.refs, runtime)
        for name, fi in mi.functions.items()
    }


def apply_widenings(layouts: dict[str, FrameLayout],
                    suggestions) -> list[dict]:
    """Grow recovered variables to cover statically reachable regions
    the traces missed (``REPRO_STATIC_WIDEN=1``).

    Each suggestion (:class:`repro.sanalysis.WideningSuggestion`) names
    a ``[start, end)`` byte region in one function's frame.  Every
    variable overlapping the region is stretched over it and the result
    re-merged to a fixed point, so the region becomes one variable; a
    region no variable touches gains a fresh (ref-less) variable.
    Widening only ever grows coverage — traced accesses stay inside
    their (now larger) variable — so it trades optimization precision
    for soundness, never correctness on traced inputs.

    Returns one ``{"func", "start", "end", "applied", "reason"}`` row
    per suggestion for the check report (``applied`` is False when the
    layout already covered the region).
    """
    rows: list[dict] = []
    for sug in suggestions:
        layout = layouts.get(sug.func)
        row = {"func": sug.func, "start": sug.start, "end": sug.end,
               "applied": False, "reason": getattr(sug, "reason", "")}
        rows.append(row)
        if layout is None or sug.end <= sug.start:
            continue
        overlapping = [v for v in layout.variables
                       if v.start < sug.end and sug.start < v.end]
        # "Already covered" means one variable spans the whole region.
        if any(v.start <= sug.start and sug.end <= v.end
               for v in overlapping):
            obs.event("frame.var.widened", func=sug.func,
                      region=[sug.start, sug.end], applied=False,
                      reason=getattr(sug, "reason", ""))
            continue
        row["applied"] = True
        if overlapping:
            anchor = overlapping[0]
            obs.event("frame.var.widened", func=sug.func,
                      region=[sug.start, sug.end], applied=True,
                      grew=[anchor.start, anchor.end],
                      reason=getattr(sug, "reason", ""))
            anchor.start = min(anchor.start, sug.start)
            anchor.end = max(anchor.end, sug.end)
        else:
            obs.event("frame.var.widened", func=sug.func,
                      region=[sug.start, sug.end], applied=True,
                      grew=None, reason=getattr(sug, "reason", ""))
            layout.variables.append(FrameVariable(sug.start, sug.end))
        layout.variables = _merge_to_fixpoint(layout.variables, [],
                                              func_name=sug.func)
        layout.ref_to_var = {rid: var for var in layout.variables
                             for rid in var.ref_ids}
        layout.variables.sort(key=lambda v: v.start)
    return rows
