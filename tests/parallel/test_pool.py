"""The shared fork-pool utility (repro.parallel.ForkPool)."""

import pytest

from repro import obs
from repro.parallel import ForkPool, publish_ctx, worker_ctx


def _echo_ctx(index: int):
    """Worker: combine the inherited context with the task index."""
    tag, values = worker_ctx()
    return tag, values[index]


@pytest.fixture
def counters():
    rec = obs.enable(reset=True)
    yield rec.registry.counters
    obs.disable()


def _drain(pool, executor, n):
    return sorted(executor.submit(_echo_ctx, i).result()
                  for i in range(n))


def test_workers_read_published_ctx(counters):
    pool = ForkPool(2)
    try:
        executor = pool.acquire("key-a", ("a", [10, 20]), ntasks=2)
        assert _drain(pool, executor, 2) == [("a", 10), ("a", 20)]
        assert counters.get("parallel.pool.spawns") == 1
    finally:
        pool.close()


def test_same_key_reuses_live_pool(counters):
    pool = ForkPool(2)
    try:
        first = pool.acquire("key", ("a", [1, 2]), ntasks=2)
        _drain(pool, first, 2)
        second = pool.acquire("key", ("a", [1, 2]), ntasks=2)
        assert second is first
        assert counters.get("parallel.pool.spawns") == 1
        assert counters.get("parallel.pool.reuses") == 1
    finally:
        pool.close()


def test_key_change_respawns(counters):
    pool = ForkPool(2)
    try:
        first = pool.acquire("key-1", ("a", [1]), ntasks=1)
        _drain(pool, first, 1)
        second = pool.acquire("key-2", ("b", [2]), ntasks=1)
        assert second is not first
        # The fresh workers see the new context, not the stale one.
        assert second.submit(_echo_ctx, 0).result() == ("b", 2)
        assert counters.get("parallel.pool.spawns") == 2
        assert counters.get("parallel.pool.reuses", 0) == 0
    finally:
        pool.close()


def test_invalidate_forces_respawn(counters):
    pool = ForkPool(2)
    try:
        first = pool.acquire("key", ("a", [1]), ntasks=1)
        _drain(pool, first, 1)
        pool.invalidate()
        assert not pool.alive
        second = pool.acquire("key", ("a", [1]), ntasks=1)
        assert second is not first
        assert _drain(pool, second, 1) == [("a", 1)]
        assert counters.get("parallel.pool.spawns") == 2
    finally:
        pool.close()


def test_worker_count_bounded_by_tasks():
    pool = ForkPool(8)
    try:
        executor = pool.acquire("key", ("a", [1, 2]), ntasks=2)
        assert executor._max_workers == 2
    finally:
        pool.close()


def test_publish_ctx_updates_global():
    publish_ctx(("tag", [99]))
    assert worker_ctx() == ("tag", [99])
    publish_ctx(None)
    assert worker_ctx() is None
