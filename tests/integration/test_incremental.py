"""Incremental re-lifting through the artifact store (paper §7.2).

Promotes ``examples/incremental_lifting.py`` into assertions: a partial
trace traps on the rare path, adding the input re-lifts, and the
re-lift reuses everything whose content did not move — per-input traces
come back as store hits, and unchanged functions ride the optimizer's
fingerprint memo instead of being re-refined.
"""

import pytest

from repro import compile_source, obs, run_binary, wytiwyg_recompile
from repro.core.incremental import incremental_recompile
from repro.opt.manager import clear_memo
from repro.recompile.lower import clear_lower_cache
from repro.store import ArtifactStore

SOURCE = r"""
int score(int kind, int value) {
    if (kind == 0) return value * 2;
    if (kind == 1) return value + 100;
    return -value;             /* the rare path */
}

int main() {
    int kind = read_int();
    int value = read_int();
    printf("score=%d\n", score(kind, value));
    return 0;
}
"""

#: Exit codes of the coverage trap the recompiled binary aborts with.
TRAP_CODES = (198, 199)

FULL_RUNS = [[0, 7], [1, 7], [2, 5]]
EXPECTED = {(0, 7): b"score=14\n", (1, 7): b"score=107\n",
            (2, 5): b"score=-5\n"}


@pytest.fixture(scope="module")
def image():
    return compile_source(SOURCE, "gcc12", "3", "incremental")


@pytest.fixture(autouse=True)
def _obs_off():
    yield
    obs.disable_ledger()
    obs.disable()


def test_partial_coverage_traps_then_relift_repairs(image, tmp_path):
    store = ArtifactStore(tmp_path / "store")

    # Job 1: only the kind=0 path traced.
    partial = incremental_recompile(image, [[0, 7]], store)
    assert partial.stats.served == "cold"
    assert partial.stats.traces_recorded == 1
    ok = run_binary(partial.recovered, [0, 7])
    assert ok.stdout == b"score=14\n"

    # The untraced path aborts with the trap instead of computing
    # garbage — and prints nothing before doing so.
    surprise = run_binary(partial.recovered, [2, 5])
    assert surprise.exit_code in TRAP_CODES
    assert surprise.stdout == b""

    # Job 2: add the inputs and re-lift; coverage is repaired.
    full = incremental_recompile(image, FULL_RUNS, store)
    for items, expected in EXPECTED.items():
        assert run_binary(full.recovered, list(items)).stdout == expected
    # The already-traced input came back as a store hit.
    assert full.stats.served == "incremental"
    assert full.stats.traces_reused == 1
    assert full.stats.traces_recorded == 2


def test_relift_reuses_unchanged_functions(image, tmp_path):
    store = ArtifactStore(tmp_path / "store")
    # Cold baseline with empty in-process memos, as a fresh daemon has.
    clear_memo()
    clear_lower_cache()
    incremental_recompile(image, [[0, 7], [1, 7]], store)

    # Adding one input: the two known traces are store hits, only the
    # new one is recorded...
    obs.enable(reset=True)
    led = obs.enable_ledger()
    try:
        served = incremental_recompile(image, FULL_RUNS, store)
        counters = dict(obs.recorder().registry.counters)
        events = list(led.events)
    finally:
        obs.disable_ledger()
        obs.disable()
    assert served.stats.served == "incremental"
    assert served.stats.traces_reused == 2
    assert served.stats.traces_recorded == 1
    assert counters.get("store.hit", 0) >= 2

    # ...and refinement is incremental too: the warm fingerprint memo
    # serves every function whose content did not move, so fewer
    # functions are re-refined than exist in the module.
    reused = {e.get("function") for e in events
              if e["kind"] in ("opt.skip", "opt.memo_hit")}
    reused.discard(None)
    assert counters.get("opt.manager.skipped", 0) \
        + counters.get("opt.manager.memo_hits", 0) > 0
    assert reused, "no function-level reuse recorded"
    total = set(served.pipeline.module.functions)
    assert reused <= total
    assert len(reused) < len(total)  # the moved function was re-refined

    # An identical resubmission is a pure result hit.
    again = incremental_recompile(image, FULL_RUNS, store)
    assert again.stats.served == "store"
    assert again.stats.traces_recorded == 0


def test_incremental_result_is_byte_identical_to_cold(image, tmp_path):
    store = ArtifactStore(tmp_path / "store")
    incremental_recompile(image, [[0, 7]], store)
    warm = incremental_recompile(image, FULL_RUNS, store)

    # A cold one-shot run with empty memos must produce the same bytes.
    clear_memo()
    clear_lower_cache()
    cold = wytiwyg_recompile(image, [list(r) for r in FULL_RUNS])
    assert warm.recovered.to_json() == cold.recovered.to_json()

    # And the store-served copy of the same result is identical again.
    replay = incremental_recompile(image, FULL_RUNS, store)
    assert replay.stats.served == "store"
    assert replay.recovered.to_json() == cold.recovered.to_json()
