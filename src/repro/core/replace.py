"""Base-pointer replacement: native allocas for recovered variables
(paper §4.2.6, "Replacing Base Pointers") and emulated-stack removal.

For every lifted function:

* each recovered frame variable becomes a native ``alloca``;
* every direct stack reference is rewritten to ``alloca + delta``;
* recovered stack arguments become explicit IR parameters, spilled into a
  contiguous per-function argument-area alloca (so variadic walks over
  the argument list still work);
* at every call site the recovered argument slots are loaded from the
  caller's own (now native) frame variables and passed explicitly;
* tagged return-address stores are deleted.

Afterwards the ``sp`` threading is dead; :func:`drop_sp_threading`
removes it module-wide, at which point the emulated stack global has no
remaining references and is deleted — the lifted program now runs
entirely on native stack frames.
"""

from __future__ import annotations

from ..errors import SymbolizeError
from ..ir.module import Function, Module
from ..ir.values import (
    Alloca,
    BinOp,
    Call,
    CallInd,
    Const,
    Instr,
    Load,
    Param,
    Store,
    Value,
)
from ..lifting.translator import EMUSTACK_NAME
from .instrument import FunctionInstrumentation, ModuleInstrumentation
from .layout import FrameLayout
from .runtime import TracingRuntime
from .signatures import SignaturePlan
from .sp0fold import is_lifted_function


def replace_base_pointers(module: Module,
                          mi: ModuleInstrumentation,
                          layouts: dict[str, FrameLayout],
                          plan: SignaturePlan,
                          runtime: TracingRuntime) -> None:
    """Rewrite every lifted function onto native stack variables."""
    # Functions whose argument area was traversed with derived pointers
    # need one contiguous area; all others get per-slot allocas that
    # mem2reg can promote.
    walked_funcs: set[str] = set()
    for access in runtime.arg_accesses.values():
        if access.walked:
            walked_funcs.update(access.callees)

    # Phase 1: create allocas and argument parameters everywhere (call
    # sites in phase 2 need the final parameter lists).
    state: dict[str, _FuncReplacement] = {}
    for name, fi in mi.functions.items():
        func = module.functions[name]
        state[name] = _FuncReplacement(func, fi, layouts[name],
                                       plan.stack_args.get(name, 0),
                                       contiguous=name in walked_funcs)
        state[name].install_allocas()

    # Phase 2: rewrite call sites first (they read sp0 offsets of the
    # original sp-chain values, which rewrite_refs replaces), then the
    # stack references themselves.
    for name, fr in state.items():
        fr.rewrite_call_sites(plan, state)
        fr.rewrite_refs()
        fr.delete_retaddr_stores()
        fr.func.invalidate()  # direct instr-list splices throughout


class _FuncReplacement:
    def __init__(self, func: Function, fi: FunctionInstrumentation,
                 layout: FrameLayout, nargs: int,
                 contiguous: bool = False):
        self.func = func
        self.fi = fi
        self.layout = layout
        self.nargs = nargs
        self.contiguous = contiguous
        self.var_allocas: dict[int, Alloca] = {}  # id(FrameVariable)
        self.args_area: Alloca | None = None
        self.arg_slots: list[Alloca] = []

    # -- phase 1 ---------------------------------------------------------------

    def install_allocas(self) -> None:
        entry = self.func.entry
        pos = 0
        for var in self.layout.variables:
            alloca = Alloca(var.size, max(var.align, 4), var.name)
            alloca.block = entry
            entry.instrs.insert(pos, alloca)
            pos += 1
            self.var_allocas[id(var)] = alloca
        if self.nargs:
            base = len(self.func.params)
            new_params = [Param(f"sarg{i}", base + i)
                          for i in range(self.nargs)]
            self.func.params.extend(new_params)
            if self.contiguous:
                self.args_area = Alloca(4 * self.nargs, 4, "argarea")
                self.args_area.block = entry
                entry.instrs.insert(pos, self.args_area)
                pos += 1
                for i, param in enumerate(new_params):
                    addr: Value = self.args_area if i == 0 else \
                        _insert_add(entry, pos, self.args_area,
                                    Const(4 * i))
                    if i:
                        pos += 1
                    store = Store(addr, param, 4)
                    store.block = entry
                    entry.instrs.insert(pos, store)
                    pos += 1
            else:
                for i, param in enumerate(new_params):
                    slot = Alloca(4, 4, f"arg{i}")
                    slot.block = entry
                    entry.instrs.insert(pos, slot)
                    pos += 1
                    self.arg_slots.append(slot)
                    store = Store(slot, param, 4)
                    store.block = entry
                    entry.instrs.insert(pos, store)
                    pos += 1

    # -- phase 2 ---------------------------------------------------------------

    def rewrite_refs(self) -> None:
        refs = self.fi.refs  # ref_id -> (value, offset)
        sp_param = self.func.params[0]
        replacements: dict[Value, Value] = {}
        for ref_id, (value, offset) in refs.items():
            if value is sp_param:
                continue
            if 0 <= offset < 4:
                continue  # return-address slot references
            if offset >= 4:
                if self.args_area is not None:
                    replacement = self._materialize(
                        value, self.args_area, offset - 4)
                elif self.arg_slots:
                    slot = (offset - 4) // 4
                    if slot >= len(self.arg_slots):
                        continue  # beyond the recovered signature
                    replacement = self._materialize(
                        value, self.arg_slots[slot], (offset - 4) % 4)
                else:
                    # Accesses above sp0 with no recovered arguments:
                    # a coverage gap; leave untouched.
                    continue
            else:
                var = self.layout.ref_to_var.get(ref_id)
                if var is None:
                    raise SymbolizeError(
                        f"{self.func.name}: base pointer at offset "
                        f"{offset} has no recovered variable")
                alloca = self.var_allocas[id(var)]
                replacement = self._materialize(
                    value, alloca, offset - var.start)
            replacements[value] = replacement
        if replacements:
            for block in self.func.blocks:
                for instr in block.instrs:
                    instr.ops = [
                        replacements[op]
                        if op in replacements
                        and instr is not replacements[op] else op
                        for op in instr.ops
                    ]

    def _materialize(self, ref_value: Value, base: Alloca,
                     delta: int) -> Value:
        if delta == 0:
            return base
        add = BinOp("add", base, Const(delta))
        if isinstance(ref_value, Instr) and ref_value.block is not None:
            block = ref_value.block
            from ..ir.values import Phi
            if isinstance(ref_value, Phi):
                # Keep the phi group contiguous: insert below it.
                index = len(block.phis())
            else:
                index = block.instrs.index(ref_value) + 1
        else:  # parameter: place after the entry allocas
            block = self.func.entry
            index = sum(1 for i in block.instrs
                        if isinstance(i, Alloca))
        add.block = block
        block.instrs.insert(index, add)
        return add

    def rewrite_call_sites(self, plan: SignaturePlan,
                           state: dict[str, "_FuncReplacement"]) -> None:
        offsets = self.func.meta.get("sp0_offsets", {})
        for callsite_id, call in self.fi.callsites.items():
            nargs = plan.callsite_args.get(callsite_id, 0)
            if nargs == 0:
                continue
            sp_arg = call.args[0]
            sp_off = offsets.get(sp_arg)
            if sp_off is None:
                raise SymbolizeError(
                    f"{self.func.name}: call-site stack pointer is not "
                    f"a constant offset from sp0")
            block = call.block
            index = block.instrs.index(call)
            extra: list[Value] = []
            for slot in range(nargs):
                target = sp_off + 4 + 4 * slot
                value = self._load_frame_slot(block, index, target)
                index = block.instrs.index(call)
                extra.append(value)
            call.ops = list(call.ops) + extra

    def _load_frame_slot(self, block, index: int, offset: int) -> Value:
        """Load the value at sp0-relative ``offset`` from the recovered
        frame (used to forward stack arguments at call sites)."""
        if offset >= 4 and self.args_area is not None:
            base: Alloca | None = self.args_area
            delta = offset - 4
        elif offset >= 4 and self.arg_slots and \
                (offset - 4) // 4 < len(self.arg_slots):
            base = self.arg_slots[(offset - 4) // 4]
            delta = (offset - 4) % 4
        else:
            base = None
            delta = 0
            for var in self.layout.variables:
                if var.start <= offset and offset + 4 <= var.end:
                    base = self.var_allocas[id(var)]
                    delta = offset - var.start
                    break
        if base is None:
            return Const(0)  # gap filling (paper §4.2.6)
        addr: Value = base
        if delta:
            addr = BinOp("add", base, Const(delta))
            addr.block = block
            block.instrs.insert(index, addr)
            index += 1
        load = Load(addr, 4)
        load.block = block
        block.instrs.insert(index, load)
        return load

    def delete_retaddr_stores(self) -> None:
        tagged = set(self.func.meta.get("retaddr_stores", []))
        if not tagged:
            return
        for block in self.func.blocks:
            block.instrs = [i for i in block.instrs if i not in tagged]


def drop_sp_threading(module: Module) -> bool:
    """Remove the sp parameter/argument from every lifted function and
    delete the emulated stack.  Returns True if performed.

    Caller must run DCE afterwards to sweep the dead sp chains.
    """
    lifted = [f for f in module.functions.values()
              if is_lifted_function(f)]
    if not lifted:
        return False
    for func in lifted:
        sp = func.params[0]
        func.params = func.params[1:]
        for i, param in enumerate(func.params):
            param.index = i
        # Any remaining direct uses of sp become a dummy constant; if
        # symbolization was complete these are all dead arithmetic.
        for block in func.blocks:
            for instr in block.instrs:
                instr.ops = [Const(0) if op is sp else op
                             for op in instr.ops]
        func.invalidate()
    lifted_names = {f.name for f in lifted}
    for func in module.functions.values():
        for block in func.blocks:
            for instr in block.instrs:
                if isinstance(instr, Call) and \
                        instr.callee.name in lifted_names:
                    instr.ops = [instr.ops[0], *instr.ops[2:]]
                elif isinstance(instr, CallInd):
                    instr.ops = [instr.ops[0], *instr.ops[2:]]
    module.globals.pop(EMUSTACK_NAME, None)
    return True


def _insert_add(block, pos: int, base: Value, const: Const) -> BinOp:
    add = BinOp("add", base, const)
    add.block = block
    block.instrs.insert(pos, add)
    return add
