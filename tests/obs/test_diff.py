"""Report diffing and the bench perf-regression gate."""

import json

import pytest

from repro import obs


def _report(counters=None, timers=None, spans=()):
    return {
        "version": 2,
        "spans": [{"name": n, "seconds": 0.0, "attrs": {},
                   "children": []} for n in spans],
        "metrics": {"counters": counters or {}, "gauges": {},
                    "histograms": {}, "timers": timers or {},
                    "profiles": {}},
    }


def _timer(mean, p95=None):
    return {"count": 10, "sum": mean * 10, "min": mean, "max": mean,
            "mean": mean, "p50": mean, "p95": p95 or mean, "p99": mean}


def test_diff_spans_and_counters():
    a = _report(counters={"lower.cache.hits": 5, "only.a": 1},
                spans=("stage.trace", "stage.lift"))
    b = _report(counters={"lower.cache.hits": 9, "only.b": 2},
                spans=("stage.trace", "stage.opt"))
    diff = obs.diff_reports(a, b)
    assert diff["spans"]["added"] == {"stage.opt": 1}
    assert diff["spans"]["removed"] == {"stage.lift": 1}
    assert diff["counters"]["added"] == {"only.b": 2}
    assert diff["counters"]["removed"] == {"only.a": 1}
    assert diff["counters"]["changed"]["lower.cache.hits"] == {
        "a": 5, "b": 9, "delta": 4}


def test_diff_surfaces_disabled_cache_counters():
    """The acceptance scenario: a run with REPRO_LOWER_CACHE=0 loses
    the lower.cache.* counters and the diff must say so."""
    a = _report(counters={"lower.cache.misses": 2})
    b = _report(counters={})
    diff = obs.diff_reports(a, b)
    assert diff["counters"]["removed"] == {"lower.cache.misses": 2}
    assert "lower.cache.misses" in obs.render_diff(diff)


def test_diff_timer_noise_thresholds():
    a = _report(timers={"slow": _timer(0.100), "steady": _timer(0.100),
                        "tiny": _timer(1e-5)})
    b = _report(timers={"slow": _timer(0.200), "steady": _timer(0.105),
                        "tiny": _timer(9e-5)})
    diff = obs.diff_reports(a, b)
    changed = diff["timers"]["changed"]
    assert set(changed) == {"slow"}  # 2.0x moves; 5% and sub-ms do not
    assert changed["slow"]["ratio"] == pytest.approx(2.0)


def test_diff_render_mentions_everything():
    a = _report(counters={"c": 1}, timers={"t": _timer(0.1)})
    b = _report(counters={"c": 3}, timers={"t": _timer(0.5)})
    text = obs.render_diff(obs.diff_reports(a, b))
    assert "counter changed  c" in text and "+2" in text
    assert "timer changed" in text and "5.00x" in text
    empty = obs.render_diff(obs.diff_reports(a, a))
    assert "no differences" in empty


def _bench_json(path, name, mean):
    path.write_text(json.dumps({
        "benchmarks": [{"name": name,
                        "stats": {"mean": mean, "median": mean},
                        "extra_info": {}}]}))
    return path


def test_load_benchmarks_folds_files(tmp_path):
    a = _bench_json(tmp_path / "a.json", "bench_x", 0.5)
    b = _bench_json(tmp_path / "b.json", "bench_y", 1.5)
    loaded = obs.load_benchmarks([a, b])
    assert loaded["bench_x"]["mean"] == 0.5
    assert loaded["bench_y"]["mean"] == 1.5
    assert loaded["bench_y"]["source"].endswith("b.json")


def test_regress_passes_within_tolerance():
    base = {"b1": {"mean": 1.0}, "b2": {"mean": 2.0}}
    fresh = {"b1": {"mean": 1.4}, "b2": {"mean": 2.1}}
    result = obs.regress(base, fresh, tolerance=1.5)
    assert result["ok"] and result["regressions"] == []
    assert "PASS" in obs.render_regress(result)


def test_regress_fails_past_tolerance():
    base = {"b1": {"mean": 1.0}}
    fresh = {"b1": {"mean": 1.6}}
    result = obs.regress(base, fresh, tolerance=1.5)
    assert not result["ok"] and result["regressions"] == ["b1"]
    text = obs.render_regress(result)
    assert "REGRESSED" in text and "FAIL" in text


def test_regress_reports_missing_and_new_benches():
    base = {"gone": {"mean": 1.0}, "kept": {"mean": 1.0}}
    fresh = {"kept": {"mean": 1.0}, "new": {"mean": 1.0}}
    result = obs.regress(base, fresh)
    assert result["ok"]  # one-sided benches warn but do not fail
    assert result["missing_from_fresh"] == ["gone"]
    assert result["new_in_fresh"] == ["new"]
    text = obs.render_regress(result)
    assert "gone" in text and "new" in text


def test_regress_empty_intersection_fails():
    result = obs.regress({"a": {"mean": 1.0}}, {"b": {"mean": 1.0}})
    assert not result["ok"]  # comparing nothing must not pass
    assert "gate fails" in obs.render_regress(result)
