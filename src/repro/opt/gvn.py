"""Value numbering and redundant-load elimination.

``global_value_numbering`` is a dominator-scoped CSE over pure ops.
``eliminate_redundant_loads`` is block-local store-to-load forwarding and
load CSE driven by :class:`~repro.opt.alias.AliasAnalysis` — the pass
whose effectiveness flips when the emulated stack is replaced by allocas.
"""

from __future__ import annotations

from ..ir.module import Block, Function, Module
from ..ir.values import (
    BinOp,
    Call,
    CallExt,
    CallInd,
    Const,
    FuncRef,
    GlobalRef,
    ICmp,
    Instr,
    Load,
    Param,
    Store,
    Unary,
    Value,
)
from .alias import AliasAnalysis
from .analysis import CFG_ANALYSES, dominators
from .simplifycfg import remove_unreachable

#: Both passes here delete or substitute pure instructions and loads;
#: neither adds, removes, or retargets blocks (GVN's entry
#: ``remove_unreachable`` changes the block count when it fires, which
#: voids retention on its own), so cached CFG analyses survive.
PRESERVES = CFG_ANALYSES

_COMMUTATIVE = frozenset({"add", "mul", "and", "or", "xor"})


def _operand_key(v: Value, numbering: dict[Instr, int]):
    if isinstance(v, Const):
        return ("c", v.value)
    if isinstance(v, GlobalRef):
        return ("g", v.name)
    if isinstance(v, FuncRef):
        return ("f", v.name)
    if isinstance(v, Param):
        return ("p", v.index)
    if isinstance(v, Instr):
        return ("i", numbering.get(v, id(v)))
    return ("?", id(v))


def _value_key(instr: Instr, numbering: dict[Instr, int]):
    if isinstance(instr, BinOp):
        a = _operand_key(instr.lhs, numbering)
        b = _operand_key(instr.rhs, numbering)
        if instr.opcode in _COMMUTATIVE and b < a:
            a, b = b, a
        return ("bin", instr.opcode, a, b)
    if isinstance(instr, ICmp):
        return ("icmp", instr.pred,
                _operand_key(instr.lhs, numbering),
                _operand_key(instr.rhs, numbering))
    if isinstance(instr, Unary):
        return ("un", instr.opcode, _operand_key(instr.src, numbering))
    return None


def global_value_numbering(func: Function) -> bool:
    """Dominator-scoped CSE of pure arithmetic. Returns True if changed."""
    pruned = remove_unreachable(func)
    doms = dominators(func)
    numbering: dict[Instr, int] = {}
    next_number = [0]
    replacements: dict[Instr, Instr] = {}

    def visit(block: Block, scope: dict) -> None:
        for instr in list(block.instrs):
            key = _value_key(instr, numbering)
            if key is None:
                continue
            existing = scope.get(key)
            if existing is not None:
                replacements[instr] = existing
                numbering[instr] = numbering[existing]
            else:
                numbering[instr] = next_number[0]
                next_number[0] += 1
                scope[key] = instr

    work: list[tuple[Block, dict]] = [(func.entry, {})]
    while work:
        block, scope = work.pop()
        visit(block, scope)
        for child in doms.tree_children(block):
            work.append((child, dict(scope)))

    if not replacements:
        return pruned

    def resolve(v: Value) -> Value:
        while isinstance(v, Instr) and v in replacements:
            v = replacements[v]
        return v

    for block in func.blocks:
        block.instrs = [i for i in block.instrs if i not in replacements]
        for instr in block.instrs:
            instr.ops = [resolve(op) for op in instr.ops]
    func.invalidate()
    return True


_EXT_FOR_SIZE = {1: "zext8", 2: "zext16"}


def eliminate_redundant_loads(func: Function,
                              module: Module | None = None) -> bool:
    """Block-local store-to-load forwarding and load CSE."""
    aa = AliasAnalysis(func, module)
    replacements: dict[Instr, Value] = {}
    inserted: list[tuple[Block, int, Instr]] = []

    for block in func.blocks:
        # available: list of (addr_value, size, value, from_store)
        available: list[tuple[Value, int, Value, bool]] = []
        for idx, instr in enumerate(block.instrs):
            if isinstance(instr, Load):
                hit = None
                for addr, size, value, from_store in available:
                    if size != instr.size:
                        continue
                    if addr is instr.addr or _must_same(aa, addr,
                                                        instr.addr):
                        hit = (value, from_store)
                        break
                if hit is not None:
                    value, from_store = hit
                    if from_store and instr.size < 4:
                        ext = Unary(_EXT_FOR_SIZE[instr.size], value)
                        ext.block = block
                        inserted.append((block, idx, ext))
                        replacements[instr] = ext
                    else:
                        replacements[instr] = value
                else:
                    available.append((instr.addr, instr.size, instr, False))
            elif isinstance(instr, Store):
                available = [
                    entry for entry in available
                    if not aa.may_alias(entry[0], entry[1],
                                        instr.addr, instr.size)
                ]
                available.append((instr.addr, instr.size, instr.value,
                                  True))
            elif isinstance(instr, (Call, CallInd, CallExt)):
                available = [
                    entry for entry in available
                    if not aa.clobbered_by_call(entry[0])
                ]

    if not replacements and not inserted:
        return False

    # Substitute loads that became Unary ext instructions in place; the
    # others simply disappear.
    for block, idx, ext in sorted(inserted, key=lambda t: -t[1]):
        old = block.instrs[idx]
        block.instrs[idx] = ext

    def resolve(v: Value) -> Value:
        while isinstance(v, Instr) and v in replacements:
            v = replacements[v]
        return v

    kept_exts = {ext for _b, _i, ext in inserted}
    for block in func.blocks:
        block.instrs = [i for i in block.instrs
                        if i not in replacements or i in kept_exts]
        for instr in block.instrs:
            instr.ops = [resolve(op) for op in instr.ops]
    func.invalidate()
    return True


def _must_same(aa: AliasAnalysis, a: Value, b: Value) -> bool:
    fa = aa.fact_for(a)
    fb = aa.fact_for(b)
    if fa[0] in ("alloca", "global", "const") and fa == fb \
            and fa[2] is not None:
        return True
    return False
