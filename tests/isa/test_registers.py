"""Register views: naming, sub-register read/write semantics."""

import pytest

from repro.isa.registers import (
    AH,
    AL,
    AX,
    EAX,
    ESP,
    GPR32,
    Reg,
    read_view,
    reg,
    write_view,
)


def test_lookup_by_name():
    assert reg("eax") == EAX
    assert reg("AX") == AX
    assert reg("%al") == AL
    assert reg("ah").high8


def test_unknown_register_rejected():
    with pytest.raises(ValueError):
        reg("rax")


def test_all_gpr32_names_round_trip():
    for i, name in enumerate(GPR32):
        r = reg(name)
        assert r.index == i and r.width == 4
        assert r.name == name


def test_invalid_views_rejected():
    with pytest.raises(ValueError):
        Reg(6, 1)  # esi has no low-8 view
    with pytest.raises(ValueError):
        Reg(5, 1, high8=True)  # ebp has no high-8 view
    with pytest.raises(ValueError):
        Reg(0, 3)


def test_full_property():
    assert AL.full == EAX
    assert AH.full == EAX
    assert AX.full == EAX


def test_read_views():
    value = 0x12345678
    assert read_view(value, EAX) == 0x12345678
    assert read_view(value, AX) == 0x5678
    assert read_view(value, AL) == 0x78
    assert read_view(value, AH) == 0x56


def test_write_full_truncates():
    assert write_view(0, EAX, 0x1_2345_6789) == 0x23456789


def test_partial_writes_preserve_upper_bits():
    base = 0xAABBCCDD
    assert write_view(base, AL, 0x11) == 0xAABBCC11
    assert write_view(base, AH, 0x22) == 0xAABB22DD
    assert write_view(base, AX, 0x3344) == 0xAABB3344


def test_write_view_masks_value():
    assert write_view(0, AL, 0x1FF) == 0xFF
    assert write_view(0, AX, 0xF0001) == 0x1


def test_esp_is_index_4():
    assert ESP.index == 4
