"""Splitting accuracy evaluation (paper §6.3, Figure 7).

Compares recovered frame layouts against the compiler's ground truth
(the debug section written by :mod:`repro.recompile.lower`, standing in
for LLVM 16's Stack Frame Layout analysis).  Each ground-truth object in
a traced function is classified:

* **matched** — a recovered variable with exactly the same byte range;
* **oversized** — fully covered by a (larger) recovered variable;
* **undersized** — partially overlapped by recovered variables;
* **missed** — no overlap at all.

Precision is matched over all recovered variables; recall is matched
over all ground-truth objects — the paper reports 94.4% / 87.6%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..binary.image import BinaryImage, FrameGroundTruth, StackObject
from .layout import FrameLayout

CATEGORIES = ("matched", "oversized", "undersized", "missed")

#: Ground-truth object kinds considered "allocations" for Figure 7.
_COUNTED_KINDS = frozenset({"var", "spill"})


@dataclass
class AccuracyReport:
    counts: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in CATEGORIES})
    total_recovered: int = 0
    per_function: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def total_objects(self) -> int:
        return sum(self.counts.values())

    @property
    def recall(self) -> float:
        total = self.total_objects
        return self.counts["matched"] / total if total else 0.0

    @property
    def precision(self) -> float:
        if not self.total_recovered:
            return 0.0
        return self.counts["matched"] / self.total_recovered

    def ratios(self) -> dict[str, float]:
        total = self.total_objects or 1
        return {c: self.counts[c] / total for c in CATEGORIES}

    def merge(self, other: "AccuracyReport") -> None:
        for c in CATEGORIES:
            self.counts[c] += other.counts[c]
        self.total_recovered += other.total_recovered
        self.per_function.update(other.per_function)


def _classify(obj: StackObject, variables) -> str:
    lo, hi = obj.offset, obj.offset + obj.size
    overlapping = [v for v in variables
                   if v.start < hi and lo < v.end]
    if not overlapping:
        return "missed"
    for v in overlapping:
        if v.start == lo and v.end == hi:
            return "matched"
    for v in overlapping:
        if v.start <= lo and hi <= v.end:
            return "oversized"
    return "undersized"


def evaluate_accuracy(image: BinaryImage,
                      layouts: dict[str, FrameLayout]) -> AccuracyReport:
    """Compare recovered layouts with the input binary's ground truth.

    Only functions present in the lifted module (i.e. traced functions)
    participate, matching the paper's methodology.
    """
    report = AccuracyReport()
    by_entry: dict[int, FrameGroundTruth] = {
        g.entry: g for g in image.ground_truth}
    for name, layout in layouts.items():
        if not name.startswith("fn_"):
            continue
        entry = int(name[3:], 16)
        truth = by_entry.get(entry)
        if truth is None:
            continue
        per_func = {c: 0 for c in CATEGORIES}
        for obj in truth.objects:
            if obj.kind not in _COUNTED_KINDS:
                continue
            category = _classify(obj, layout.variables)
            per_func[category] += 1
            report.counts[category] += 1
        report.total_recovered += len(layout.variables)
        report.per_function[truth.func_name or name] = per_func
    return report
